"""Sharded multi-process solver pool: the supervisor side.

``repro-pcmax serve --pool-workers N`` swaps the single-process
:class:`~repro.service.server.SolveService` for a
:class:`PooledSolveService`: the asyncio JSON-lines front end, admission
control, single-flight coalescing, and deadline bookkeeping stay in the
supervisor process, while every DP runs in one of N
:mod:`repro.service.worker` processes — aggregate throughput scales
with the machine instead of saturating one core's GIL.

Routing is by the canonical sorted-multiset instance key
(:mod:`repro.service.sharding`) — the same key space the result cache
and the durable store already share — so permuted duplicates always hit
the same worker's warm memory cache, and one canonical key never solves
on two workers at once.

Failure semantics (pinned by the worker-kill e2e test):

* a worker death (crash, OOM-kill, SIGKILL) is detected as EOF on its
  pipe; the supervisor respawns the process immediately;
* each in-flight request of the dead worker is re-sent **once** to the
  respawned worker if its deadline still has room, otherwise (or on a
  second death) it degrades to the LPT schedule tagged
  ``degraded=true`` — the same anytime fallback the deadline path uses,
  so a crash costs a client at most the 4/3 guarantee, never an error;
* a request whose deadline fires while queued or solving is cancelled
  on the worker (a ``cancel`` frame trips the solve's ``check_deadline``
  hook between probes) and answered with LPT from the supervisor.

Durability: workers write through to the *shared* store root with
per-worker segment tags and journal their own admissions
(``journal-w<i>.jsonl``) — one writer per file keeps the fsync
guarantees intact; startup recovery replays every journal
(:func:`repro.store.recovery.recover_all`).

See ``docs/scaling.md`` for the full architecture reference.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import multiprocessing
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.service.admission import AdmissionController
from repro.service.cache import CacheKey
from repro.service.metrics import MetricsRegistry, aggregate_pool_stats
from repro.service.registry import (
    UnknownEngineError,
    fallback_result,
    get_engine,
)
from repro.service.requests import (
    STATUS_ERROR,
    STATUS_REJECTED,
    SolveRequest,
    SolveResult,
    StreamRequest,
    StreamResult,
)
from repro.service.sharding import shard_index, shard_key, tenant_shard
from repro.service.worker import send_frame, worker_main

__all__ = ["SupervisorPool", "PooledSolveService", "WorkerHandle"]

#: Seconds to wait for a worker's ``ready`` frame at pool start.
DEFAULT_SPAWN_GRACE = 60.0
#: Seconds a control round-trip (ping/stats) may take before the worker
#: is reported unreachable.
CONTROL_TIMEOUT = 5.0


@dataclass
class _PoolJob:
    """One request travelling through the pool."""

    job_id: str
    request: SolveRequest
    shard: int
    deadline_at: float | None
    future: "asyncio.Future[SolveResult]"
    retried: bool = False


@dataclass
class _StreamJob:
    """One live-schedule event in flight to a tenant's pinned worker.

    No retry on worker death: the session's in-memory state died with
    the worker, so replaying a single event against a fresh (empty)
    session would corrupt rather than recover.  The client gets an
    error result and re-opens the session — ``open_session`` restores
    the last durable snapshot from the shared store.
    """

    job_id: str
    request: StreamRequest
    future: "asyncio.Future[StreamResult]"


class WorkerHandle:
    """Supervisor-side bookkeeping for one worker process."""

    def __init__(self, worker_id: int, config: dict[str, Any], mp_ctx) -> None:
        self.worker_id = worker_id
        self.config = config
        self._mp_ctx = mp_ctx
        self.conn = None
        self.proc = None
        self.ready = False
        self.restarts = 0
        self.inflight: dict[str, _PoolJob] = {}
        self.stream_inflight: dict[str, _StreamJob] = {}
        self.send_lock = threading.Lock()

    def spawn(self) -> None:
        """Start (or restart) the worker process.  Blocking — run it off
        the event loop."""
        parent_conn, child_conn = self._mp_ctx.Pipe()
        proc = self._mp_ctx.Process(
            target=worker_main,
            args=(child_conn, self.worker_id, self.config),
            name=f"repro-pool-w{self.worker_id}",
            daemon=True,
        )
        proc.start()
        # Close our copy of the child's end: otherwise the pipe never
        # EOFs when the worker dies and crash detection goes blind.
        child_conn.close()
        self.conn = parent_conn
        self.proc = proc
        self.ready = False

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.is_alive()

    def reap(self, timeout: float = 2.0) -> None:
        """Join (then terminate, then kill) the current process."""
        if self.proc is None:
            return
        self.proc.join(timeout)
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(1.0)
        if self.proc.is_alive():  # pragma: no cover - stuck in uninterruptible IO
            self.proc.kill()
            self.proc.join(1.0)
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass


class SupervisorPool:
    """Owns N worker processes and the frame traffic to them."""

    def __init__(
        self,
        num_workers: int,
        *,
        store_root: str | None = None,
        store_ttl: float | None = None,
        cache_size: int = 1024,
        cache_ttl: float | None = None,
        archive_traces: bool = False,
        metrics: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.monotonic,
        start_method: str = "spawn",
        spawn_grace: float = DEFAULT_SPAWN_GRACE,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._clock = clock
        self._spawn_grace = spawn_grace
        # "spawn" (not fork) on purpose: the supervisor runs an event
        # loop plus IO threads, and forking a threaded process can
        # deadlock the child on inherited lock state.
        self._mp_ctx = multiprocessing.get_context(start_method)
        config = {
            "store_root": store_root,
            "store_ttl": store_ttl,
            "cache_size": cache_size,
            "cache_ttl": cache_ttl,
            "archive_traces": archive_traces,
        }
        self.handles = [
            WorkerHandle(i, config, self._mp_ctx) for i in range(num_workers)
        ]
        # One thread per worker sits blocked in recv_bytes (the pump);
        # the spare threads carry sends, control frames, and respawns.
        self._io = ThreadPoolExecutor(
            max_workers=num_workers + 4, thread_name_prefix="pool-io"
        )
        self._pumps: list[asyncio.Task[None]] = []
        self._seq = itertools.count(1)
        self._pending_control: dict[str, asyncio.Future[dict]] = {}
        self._ready_events: dict[int, asyncio.Event] = {}
        self._closing = False
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn every worker and wait until each reports ``ready``."""
        if self._started:
            return
        self._started = True
        loop = asyncio.get_running_loop()
        for handle in self.handles:
            self._ready_events[handle.worker_id] = asyncio.Event()
        await asyncio.gather(
            *(loop.run_in_executor(self._io, h.spawn) for h in self.handles)
        )
        for handle in self.handles:
            self._pumps.append(loop.create_task(self._pump(handle)))
        await asyncio.wait_for(
            asyncio.gather(*(e.wait() for e in self._ready_events.values())),
            timeout=self._spawn_grace,
        )

    async def aclose(self) -> None:
        """Shut the workers down cleanly (journals checkpoint empty)."""
        if not self._started or self._closing:
            self._closing = True
            self._io.shutdown(wait=False, cancel_futures=True)
            return
        self._closing = True
        for handle in self.handles:
            await self._send(handle, {"kind": "shutdown"})
        loop = asyncio.get_running_loop()
        await asyncio.gather(
            *(loop.run_in_executor(None, h.reap) for h in self.handles)
        )
        for task in self._pumps:
            task.cancel()
        await asyncio.gather(*self._pumps, return_exceptions=True)
        self._pumps.clear()
        self._io.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # Frame traffic
    # ------------------------------------------------------------------
    async def _send(self, handle: WorkerHandle, frame: dict[str, Any]) -> bool:
        """Write one frame to a worker off-loop; False if the pipe is
        gone (the pump notices the death independently)."""
        conn = handle.conn
        if conn is None:
            return False

        def write() -> None:
            with handle.send_lock:
                send_frame(conn, frame)

        try:
            await asyncio.get_running_loop().run_in_executor(self._io, write)
        except (OSError, ValueError, BrokenPipeError):
            return False
        return True

    async def _pump(self, handle: WorkerHandle) -> None:
        """Drain one worker's frames until EOF; EOF outside shutdown is
        a death — respawn and re-route its in-flight work."""
        loop = asyncio.get_running_loop()
        conn = handle.conn
        while True:
            try:
                data = await loop.run_in_executor(self._io, conn.recv_bytes)
            except (EOFError, OSError):
                break
            try:
                msg = json.loads(data.decode("utf-8"))
            except ValueError:
                continue
            if isinstance(msg, dict):
                self._on_frame(handle, msg)
        if not self._closing:
            self.metrics.counter("pool.worker_deaths").inc()
            await self._respawn(handle)

    def _on_frame(self, handle: WorkerHandle, msg: dict[str, Any]) -> None:
        kind = msg.get("kind")
        if kind == "ready":
            handle.ready = True
            event = self._ready_events.get(handle.worker_id)
            if event is not None:
                event.set()
            self.metrics.gauge(f"pool.worker.{handle.worker_id}.pid").set(
                float(msg.get("pid") or 0)
            )
        elif kind == "result":
            job = handle.inflight.pop(str(msg.get("id")), None)
            if job is None or job.future.done():
                self.metrics.counter("pool.late_results_dropped").inc()
                return
            try:
                result = SolveResult.from_dict(msg["result"])
            except (KeyError, ValueError, TypeError) as exc:
                result = SolveResult(
                    request_id=job.request.request_id,
                    status=STATUS_ERROR,
                    error=f"malformed worker result: {exc}",
                )
            job.future.set_result(result)
        elif kind == "stream_result":
            job = handle.stream_inflight.pop(str(msg.get("id")), None)
            if job is None or job.future.done():
                self.metrics.counter("pool.late_results_dropped").inc()
                return
            try:
                result = StreamResult.from_dict(msg["result"])
            except (KeyError, ValueError, TypeError) as exc:
                result = StreamResult(
                    request_id=job.request.request_id,
                    tenant=job.request.tenant,
                    action=job.request.action,
                    status=STATUS_ERROR,
                    error=f"malformed worker stream result: {exc}",
                )
            job.future.set_result(result)
        elif kind in ("pong", "stats"):
            fut = self._pending_control.pop(str(msg.get("id")), None)
            if fut is not None and not fut.done():
                fut.set_result(msg)

    # ------------------------------------------------------------------
    # Crash handling
    # ------------------------------------------------------------------
    async def _respawn(self, handle: WorkerHandle) -> None:
        handle.restarts += 1
        self.metrics.counter("pool.worker_restarts").inc()
        stranded = list(handle.inflight.values())
        handle.inflight.clear()
        stream_stranded = list(handle.stream_inflight.values())
        handle.stream_inflight.clear()
        loop = asyncio.get_running_loop()
        respawned = False
        for attempt in range(3):
            try:
                await loop.run_in_executor(self._io, handle.reap)
                await loop.run_in_executor(self._io, handle.spawn)
                respawned = True
                break
            except OSError:  # pragma: no cover - resource exhaustion
                await asyncio.sleep(0.5 * (attempt + 1))
        if respawned:
            self._pumps.append(loop.create_task(self._pump(handle)))
        for job in stranded:
            if job.future.done():
                continue
            retryable = (
                respawned
                and not job.retried
                and (job.deadline_at is None or self._clock() < job.deadline_at)
            )
            if retryable:
                job.retried = True
                self.metrics.counter("pool.retries").inc()
                await self._send_job(handle, job)
            else:
                self.metrics.counter("pool.crash_degradations").inc()
                job.future.set_result(self._degrade_result(job.request))
        for sjob in stream_stranded:
            # Never retried — see _StreamJob.  The error tells the
            # client to reopen (which restores the durable snapshot).
            if not sjob.future.done():
                self.metrics.counter("pool.stream_session_losses").inc()
                sjob.future.set_result(self._stream_crash_result(sjob.request))

    @staticmethod
    def _stream_crash_result(request: StreamRequest) -> StreamResult:
        return StreamResult(
            request_id=request.request_id,
            tenant=request.tenant,
            action=request.action,
            status=STATUS_ERROR,
            error=(
                "worker died mid-session; reopen the session "
                "(open_session restores the last durable snapshot)"
            ),
        )

    def _degrade_result(self, request: SolveRequest) -> SolveResult:
        """The anytime fallback, computed supervisor-side: the
        problem-appropriate LPT tagged ``degraded``
        (:func:`repro.service.registry.fallback_result`).
        (``degradations_total`` is counted once, in ``_admit_and_solve``.)"""
        return fallback_result(request)

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    async def _send_job(self, handle: WorkerHandle, job: _PoolJob) -> None:
        handle.inflight[job.job_id] = job
        deadline = (
            None
            if job.deadline_at is None
            else max(0.0, job.deadline_at - self._clock())
        )
        sent = await self._send(
            handle,
            {
                "kind": "solve",
                "id": job.job_id,
                "request": job.request.to_dict(),
                "deadline": deadline,
            },
        )
        if not sent and handle.inflight.pop(job.job_id, None) is not None:
            # Pipe already gone and the pump's respawn missed this job:
            # answer now rather than strand the client.
            if not job.future.done():
                self.metrics.counter("pool.crash_degradations").inc()
                job.future.set_result(self._degrade_result(job.request))

    async def submit(
        self, request: SolveRequest, *, deadline_at: float | None = None
    ) -> SolveResult:
        """Route *request* to its shard's worker and await the answer,
        degrading supervisor-side if the deadline fires first."""
        shard = shard_index(shard_key(request), self.num_workers)
        job = _PoolJob(
            job_id=f"{next(self._seq):08d}",
            request=request,
            shard=shard,
            deadline_at=deadline_at,
            future=asyncio.get_running_loop().create_future(),
        )
        handle = self.handles[shard]
        self.metrics.counter("pool.dispatched").inc()
        self.metrics.counter(f"pool.shard.{shard}.dispatched").inc()
        await self._send_job(handle, job)
        if job.deadline_at is None:
            return await job.future
        remaining = max(0.0, job.deadline_at - self._clock())
        try:
            return await asyncio.wait_for(asyncio.shield(job.future), remaining)
        except asyncio.TimeoutError:
            handle.inflight.pop(job.job_id, None)
            # Best-effort cancel: trips the solve's check_deadline hook
            # between probes so the shard lane frees up.
            asyncio.get_running_loop().create_task(
                self._send(handle, {"kind": "cancel", "id": job.job_id})
            )
            self.metrics.counter("pool.deadline_degradations").inc()
            return self._degrade_result(job.request)

    async def submit_stream(self, request: StreamRequest) -> StreamResult:
        """Route one live-schedule event to its tenant's pinned worker.

        Routing is by *tenant*, not instance content
        (:func:`repro.service.sharding.tenant_shard`): stream events
        are stateful, and the worker's FIFO solve lane then keeps one
        tenant's events in arrival order.
        """
        shard = tenant_shard(request.tenant, self.num_workers)
        job = _StreamJob(
            job_id=f"s{next(self._seq):08d}",
            request=request,
            future=asyncio.get_running_loop().create_future(),
        )
        handle = self.handles[shard]
        handle.stream_inflight[job.job_id] = job
        self.metrics.counter("pool.stream_dispatched").inc()
        self.metrics.counter(f"pool.shard.{shard}.stream_dispatched").inc()
        sent = await self._send(
            handle,
            {
                "kind": "stream",
                "id": job.job_id,
                "request": request.to_dict(),
            },
        )
        if not sent and handle.stream_inflight.pop(job.job_id, None) is not None:
            if not job.future.done():
                self.metrics.counter("pool.stream_session_losses").inc()
                job.future.set_result(self._stream_crash_result(request))
        return await job.future

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    async def _control(
        self, handle: WorkerHandle, kind: str, timeout: float = CONTROL_TIMEOUT
    ) -> dict[str, Any] | None:
        """One ping/stats round trip; ``None`` if the worker is gone or
        does not answer in time."""
        if handle.conn is None:
            return None
        cid = f"c{next(self._seq):08d}"
        fut: asyncio.Future[dict] = asyncio.get_running_loop().create_future()
        self._pending_control[cid] = fut
        if not await self._send(handle, {"kind": kind, "id": cid}):
            self._pending_control.pop(cid, None)
            return None
        try:
            return await asyncio.wait_for(fut, timeout)
        except asyncio.TimeoutError:
            self._pending_control.pop(cid, None)
            return None

    async def stats_all(self) -> dict[int, dict[str, Any] | None]:
        """Per-worker metrics snapshots (``None`` for unreachable)."""
        replies = await asyncio.gather(
            *(self._control(h, "stats") for h in self.handles)
        )
        return {
            h.worker_id: (r.get("stats") if r is not None else None)
            for h, r in zip(self.handles, replies)
        }

    async def healthcheck(self) -> dict[str, Any]:
        """Liveness + responsiveness of every worker."""
        replies = await asyncio.gather(
            *(self._control(h, "ping", timeout=2.0) for h in self.handles)
        )
        details = []
        for handle, reply in zip(self.handles, replies):
            details.append(
                {
                    "worker": handle.worker_id,
                    "alive": handle.alive,
                    "responsive": reply is not None,
                    "pid": handle.proc.pid if handle.proc is not None else None,
                    "restarts": handle.restarts,
                    "inflight": len(handle.inflight),
                }
            )
        healthy = sum(1 for d in details if d["alive"] and d["responsive"])
        return {
            "ok": healthy == self.num_workers,
            "mode": "pool",
            "workers": self.num_workers,
            "healthy": healthy,
            "details": details,
        }


class PooledSolveService:
    """Drop-in pooled counterpart of
    :class:`repro.service.server.SolveService`.

    Same duck-typed surface the JSON-lines front end consumes —
    ``handle`` / ``stats`` / ``healthcheck`` / ``request_shutdown`` /
    ``aclose`` / ``metrics`` — but every solve executes in a worker
    process chosen by shard key.  ``stats`` is a coroutine here (it
    round-trips to the workers); the front end awaits either shape.
    """

    def __init__(
        self,
        num_workers: int,
        *,
        admission: AdmissionController | None = None,
        metrics: MetricsRegistry | None = None,
        default_deadline: float | None = None,
        store_root: str | None = None,
        store_ttl: float | None = None,
        cache_size: int = 1024,
        cache_ttl: float | None = None,
        archive_traces: bool = False,
        clock: Callable[[], float] = time.monotonic,
        start_method: str = "spawn",
        spawn_grace: float = DEFAULT_SPAWN_GRACE,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.admission = admission if admission is not None else AdmissionController()
        self.default_deadline = default_deadline
        self._clock = clock
        self.pool = SupervisorPool(
            num_workers,
            store_root=store_root,
            store_ttl=store_ttl,
            cache_size=cache_size,
            cache_ttl=cache_ttl,
            archive_traces=archive_traces,
            metrics=self.metrics,
            clock=clock,
            start_method=start_method,
            spawn_grace=spawn_grace,
        )
        self._inflight: dict[CacheKey, asyncio.Future[None]] = {}
        self._start_lock: asyncio.Lock | None = None
        self._shutdown_event: asyncio.Event | None = None

    @property
    def num_workers(self) -> int:
        return self.pool.num_workers

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn the pool (idempotent; ``handle`` also calls this)."""
        if self._start_lock is None:
            self._start_lock = asyncio.Lock()
        async with self._start_lock:
            await self.pool.start()

    def request_shutdown(self) -> None:
        """Signal the server loop to exit (the ``shutdown`` op)."""
        if self._shutdown_event is not None:
            self._shutdown_event.set()

    async def aclose(self) -> None:
        """Shut the pool down cleanly."""
        await self.pool.aclose()

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    async def handle(self, request: SolveRequest) -> SolveResult:
        """Serve one request: validate → coalesce → admit → shard →
        worker solve (→ degrade on deadline/crash)."""
        await self.start()
        t0 = self._clock()
        self.metrics.counter("requests_total").inc()
        self.metrics.counter(f"requests.problem.{request.problem}").inc()
        try:
            request.instance()  # eager structural validation
            get_engine(request.engine, problem=request.problem)
        except (UnknownEngineError, ValueError, TypeError) as exc:
            self.metrics.counter("requests_invalid").inc()
            return SolveResult(
                request_id=request.request_id,
                status=STATUS_ERROR,
                engine=request.engine,
                error=str(exc),
            )

        # Single-flight coalescing, trivially shard-aware: one canonical
        # key maps to one shard, so followers wait for the leader and
        # then submit — the worker's shard cache answers them instantly.
        key = shard_key(request)
        leader = key not in self._inflight
        if leader:
            self._inflight[key] = asyncio.get_running_loop().create_future()
        else:
            self.metrics.counter("requests_coalesced").inc()
            try:
                await asyncio.shield(self._inflight[key])
            except asyncio.CancelledError:
                raise
            except Exception:
                pass
        try:
            return await self._admit_and_solve(request, t0)
        finally:
            if leader:
                waiter = self._inflight.pop(key)
                if not waiter.done():
                    waiter.set_result(None)

    async def _admit_and_solve(
        self, request: SolveRequest, t0: float
    ) -> SolveResult:
        decision = self.admission.try_admit(request)
        if not decision.admitted:
            self.metrics.counter("requests_shed").inc()
            return SolveResult(
                request_id=request.request_id,
                status=STATUS_REJECTED,
                engine=request.engine,
                retry_after=decision.retry_after,
                error=decision.reason,
            )
        deadline = (
            request.deadline if request.deadline is not None else self.default_deadline
        )
        deadline_at = None if deadline is None else t0 + deadline
        try:
            result = await self.pool.submit(request, deadline_at=deadline_at)
        finally:
            self.admission.release(decision)
        if result.cached:
            self.metrics.counter("cache_hits").inc()
        if result.degraded:
            self.metrics.counter("degradations_total").inc()
        self.metrics.histogram("request_latency_seconds").observe(
            self._clock() - t0
        )
        return result

    async def handle_stream(self, request: StreamRequest) -> StreamResult:
        """Serve one live-schedule event (``op=stream``) on the pinned
        worker's serial lane — the pooled counterpart of
        :meth:`repro.service.server.SolveService.handle_stream`."""
        await self.start()
        self.metrics.counter("stream_events_total").inc()
        result = await self.pool.submit_stream(request)
        if not result.ok:
            self.metrics.counter("stream_errors").inc()
        return result

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    async def stats(self) -> dict[str, Any]:
        """The pooled ``{"op": "stats"}`` payload: the supervisor's own
        instruments, each worker's snapshot namespaced ``worker.<i>.*``,
        and ``pool.*`` totals summed across workers."""
        self.metrics.set_many(
            "admission", {k: float(v) for k, v in self.admission.stats().items()}
        )
        self.metrics.gauge("pool.workers").set(float(self.num_workers))
        self.metrics.gauge("pool.worker_restarts_total").set(
            float(sum(h.restarts for h in self.pool.handles))
        )
        workers = (
            await self.pool.stats_all()
            if self.pool._started and not self.pool._closing
            else {}
        )
        return aggregate_pool_stats(self.metrics.snapshot(), workers)

    async def healthcheck(self) -> dict[str, Any]:
        """Per-worker liveness/responsiveness report (the ``healthcheck`` op)."""
        await self.start()
        return await self.pool.healthcheck()
