"""The solver registry — one source of truth for engine names.

Both the CLI (``repro-pcmax solve``) and the service front-end resolve
engine names here, so "which engines exist, what do they guarantee, and
can they be cancelled mid-flight" lives in exactly one place.  Each
:class:`EngineSpec` declares

* ``guarantee(request)`` — the a-priori approximation factor of the
  engine for that request (``1 + eps`` for the PTAS family, Graham's
  bounds for the list heuristics, ``1.0`` for exact methods);
* ``supports_deadline`` — whether the engine honours the context's
  deadline hook between units of work (the PTAS bisection probes);
* ``parallelizable`` — whether the engine fans out onto worker pools;
* ``solve(instance, request, ctx)`` — the actual callable, where ``ctx``
  is a :class:`repro.core.context.SolveContext` (or ``None`` for plain
  defaults).  :func:`build_solve_context` is the one place that turns a
  request plus service plumbing (deadline, tracer, metrics) into that
  context.

Unknown names raise :class:`UnknownEngineError` (a ``ValueError``) whose
message lists the valid names — the CLI turns it into a clean non-zero
exit instead of a traceback, the server into a ``status="error"``
response.  Dashes and underscores are interchangeable in names
(``parallel-ptas`` resolves to ``parallel_ptas``).
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.algorithms.list_scheduling import (
    list_scheduling,
    list_scheduling_worst_case_ratio,
)
from repro.algorithms.lpt import lpt, lpt_worst_case_ratio
from repro.algorithms.multifit import multifit
from repro.core.context import SolveContext
from repro.core.dp import SEQUENTIAL_ENGINES
from repro.core.parallel_dp import BACKENDS
from repro.core.ptas import MODES, parallel_ptas, ptas
from repro.model.instance import Instance
from repro.parallel.cpus import resolve_workers
from repro.model.schedule import Schedule
from repro.service.requests import STATUS_OK, SolveResult, deadline_checker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.requests import SolveRequest

CheckDeadline = Callable[[], None]
SolverFn = Callable[[Instance, "SolveRequest", "SolveContext | None"], Schedule]


def build_solve_context(
    request: "SolveRequest",
    *,
    deadline_at: float | None = None,
    clock: Callable[[], float] = time.monotonic,
    tracer: Any = None,
    metrics: Any = None,
) -> SolveContext:
    """Construct the per-request :class:`SolveContext` the service hands
    to an engine.

    ``deadline_at`` (absolute, on ``clock``'s timeline) becomes a
    :func:`repro.service.requests.deadline_checker` hook; ``tracer`` and
    ``metrics`` are stored as-is (``tracer=None`` means untraced).  This
    is the single place the service assembles cross-cutting concerns —
    engines never see raw deadlines or registries.
    """
    check = (
        deadline_checker(deadline_at, clock) if deadline_at is not None else None
    )
    kwargs: dict[str, Any] = {"check_deadline": check, "metrics": metrics}
    if tracer is not None:
        kwargs["tracer"] = tracer
    return SolveContext(**kwargs)


def _coerce_ctx(ctx: "SolveContext | CheckDeadline | None") -> SolveContext | None:
    """Accept the legacy bare ``check_deadline`` callable in the third
    adapter slot, warning and wrapping it into a context."""
    if ctx is None or isinstance(ctx, SolveContext):
        return ctx
    warnings.warn(
        "passing a bare check_deadline callable to an engine adapter is "
        "deprecated; pass a SolveContext (see build_solve_context)",
        DeprecationWarning,
        stacklevel=3,
    )
    return SolveContext(check_deadline=ctx)


class UnknownEngineError(ValueError):
    """An engine (or sub-engine/backend) name that the registry does not
    know; the message enumerates the valid choices."""


@dataclass(frozen=True)
class EngineSpec:
    """Declared capabilities and entry point of one engine."""

    name: str
    description: str
    guarantee: Callable[["SolveRequest"], float]
    solve: SolverFn
    supports_deadline: bool = False
    parallelizable: bool = False
    exact: bool = False


# ---------------------------------------------------------------------------
# Engine adapters: (instance, request, ctx) -> Schedule
# ---------------------------------------------------------------------------

def _solve_ptas(
    instance: Instance,
    request: "SolveRequest",
    ctx: "SolveContext | CheckDeadline | None",
) -> Schedule:
    if request.dp_engine not in SEQUENTIAL_ENGINES:
        raise UnknownEngineError(
            f"unknown DP engine {request.dp_engine!r}; available: "
            f"{sorted(SEQUENTIAL_ENGINES)}"
        )
    return ptas(
        instance,
        request.eps,
        engine=request.dp_engine,
        ctx=_coerce_ctx(ctx),
    ).schedule


def _solve_parallel_ptas(
    instance: Instance,
    request: "SolveRequest",
    ctx: "SolveContext | CheckDeadline | None",
) -> Schedule:
    if request.backend not in BACKENDS:
        raise UnknownEngineError(
            f"unknown wavefront backend {request.backend!r}; available: "
            f"{sorted(BACKENDS)}"
        )
    if request.mode not in MODES:
        raise UnknownEngineError(
            f"unknown bisection mode {request.mode!r}; available: "
            f"{sorted(MODES)}"
        )
    return parallel_ptas(
        instance,
        request.eps,
        num_workers=resolve_workers(request.workers),
        backend=request.backend,
        mode=request.mode,
        ctx=_coerce_ctx(ctx),
    ).schedule


def _solve_exact(method: str) -> SolverFn:
    def run(
        instance: Instance,
        request: "SolveRequest",
        ctx: "SolveContext | CheckDeadline | None",
    ) -> Schedule:
        from repro.exact.api import solve_exact

        return solve_exact(
            instance, method, time_limit=request.time_limit
        ).schedule

    return run


def _solve_baseline(fn: Callable[[Instance], Schedule]) -> SolverFn:
    def run(
        instance: Instance,
        request: "SolveRequest",
        ctx: "SolveContext | CheckDeadline | None",
    ) -> Schedule:
        return fn(instance)

    return run


def _ptas_guarantee(request: "SolveRequest") -> float:
    return 1.0 + request.eps


_REGISTRY: dict[str, EngineSpec] = {}


def _register(spec: EngineSpec) -> None:
    _REGISTRY[spec.name] = spec


_register(
    EngineSpec(
        name="ptas",
        description="sequential Hochbaum–Shmoys PTAS (Algorithm 1)",
        guarantee=_ptas_guarantee,
        solve=_solve_ptas,
        supports_deadline=True,
    )
)
_register(
    EngineSpec(
        name="parallel_ptas",
        description="wavefront parallel PTAS (paper §III, Algorithm 3)",
        guarantee=_ptas_guarantee,
        solve=_solve_parallel_ptas,
        supports_deadline=True,
        parallelizable=True,
    )
)
_register(
    EngineSpec(
        name="lpt",
        description="Longest Processing Time first (4/3 − 1/(3m))",
        guarantee=lambda req: lpt_worst_case_ratio(req.machines),
        solve=_solve_baseline(lpt),
    )
)
_register(
    EngineSpec(
        name="ls",
        description="Graham list scheduling (2 − 1/m)",
        guarantee=lambda req: list_scheduling_worst_case_ratio(req.machines),
        solve=_solve_baseline(list_scheduling),
    )
)
_register(
    EngineSpec(
        name="multifit",
        description="MULTIFIT binary search over FFD (1.22 + 2^-k)",
        guarantee=lambda req: 1.22,
        solve=_solve_baseline(multifit),
    )
)
_register(
    EngineSpec(
        name="ilp",
        description="assignment MILP via HiGHS (exact, time-limited)",
        guarantee=lambda req: 1.0,
        solve=_solve_exact("ilp"),
        exact=True,
    )
)
_register(
    EngineSpec(
        name="bnb",
        description="branch and bound (exact)",
        guarantee=lambda req: 1.0,
        solve=_solve_exact("bnb"),
        exact=True,
    )
)
_register(
    EngineSpec(
        name="brute",
        description="brute force (exact, tiny instances only)",
        guarantee=lambda req: 1.0,
        solve=_solve_exact("brute"),
        exact=True,
    )
)


def solve_to_result(
    request: "SolveRequest",
    ctx: "SolveContext | None" = None,
    *,
    clock: Callable[[], float] = time.perf_counter,
) -> SolveResult:
    """Solve *request* synchronously through its registered engine.

    The one blocking solve-to-wire-type path, shared by the service's
    worker threads and the journal replay of
    :mod:`repro.store.recovery`: resolve the engine, run it under *ctx*,
    and wrap the schedule in an ``ok`` :class:`SolveResult` carrying the
    engine's declared guarantee.  Engine errors propagate — callers own
    the degrade/abort policy.
    """
    spec = get_engine(request.engine)
    instance = request.instance()
    t0 = clock()
    schedule = spec.solve(instance, request, ctx)
    return SolveResult(
        request_id=request.request_id,
        status=STATUS_OK,
        engine=canonical_engine_name(request.engine),
        makespan=schedule.makespan,
        assignment=schedule.assignment,
        guarantee=spec.guarantee(request),
        elapsed=clock() - t0,
    )


def canonical_engine_name(name: str) -> str:
    """Normalize an engine name (dashes == underscores, case-folded)."""
    return name.strip().lower().replace("-", "_")


def available_engines() -> tuple[str, ...]:
    """The registered engine names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_engine(name: str) -> EngineSpec:
    """Resolve *name* to its :class:`EngineSpec`.

    Raises
    ------
    UnknownEngineError
        If the (normalized) name is not registered; the message lists the
        valid names so callers can surface it verbatim.
    """
    spec = _REGISTRY.get(canonical_engine_name(name))
    if spec is None:
        raise UnknownEngineError(
            f"unknown engine {name!r}; available: {', '.join(available_engines())}"
        )
    return spec
