"""The solver registry — one source of truth for engine names.

Both the CLI (``repro-pcmax solve``) and the service front-end resolve
engine names here, so "which engines exist, what do they guarantee, and
can they be cancelled mid-flight" lives in exactly one place.  Each
:class:`EngineSpec` declares

* ``guarantee(request)`` — the a-priori approximation factor of the
  engine for that request (``1 + eps`` for the PTAS family, Graham's
  bounds for the list heuristics, ``1.0`` for exact methods);
* ``supports_deadline`` — whether the engine honours the context's
  deadline hook between units of work (the PTAS bisection probes);
* ``parallelizable`` — whether the engine fans out onto worker pools;
* ``problems`` — the problem variants the engine can solve
  (``p_cmax`` for everything; the greedy baselines also speak
  ``q_cmax`` through their speed-aware counterparts);
* ``solve(instance, request, ctx)`` — the actual callable, where ``ctx``
  is a :class:`repro.core.context.SolveContext` (or ``None`` for plain
  defaults).  :func:`build_solve_context` is the one place that turns a
  request plus service plumbing (deadline, tracer, metrics) into that
  context.

Unknown names raise :class:`UnknownEngineError` (a ``ValueError``) whose
message lists the valid names — the CLI turns it into a clean non-zero
exit instead of a traceback, the server into a ``status="error"``
response.  Dashes and underscores are interchangeable in names
(``parallel-ptas`` resolves to ``parallel_ptas``).  A known engine asked
for a problem outside its ``problems`` raises
:class:`UnsupportedProblemError` (a subclass, same handling) listing the
valid (engine, problem) pairs.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.algorithms.list_scheduling import (
    list_scheduling,
    list_scheduling_worst_case_ratio,
)
from repro.algorithms.lpt import lpt, lpt_worst_case_ratio
from repro.algorithms.multifit import multifit
from repro.algorithms.related import (
    q_list_scheduling,
    q_list_worst_case_ratio,
    q_lpt,
    q_lpt_worst_case_ratio,
)
from repro.core.context import SolveContext
from repro.core.dp import SEQUENTIAL_ENGINES
from repro.core.parallel_dp import BACKENDS
from repro.core.ptas import MODES, parallel_ptas, ptas
from repro.model.instance import Instance
from repro.model.problem import P_CMAX, Q_CMAX, canonical_problem_name
from repro.model.qinstance import QInstance, QSchedule
from repro.parallel.cpus import resolve_workers
from repro.model.schedule import Schedule
from repro.service.requests import STATUS_OK, SolveResult, deadline_checker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.requests import SolveRequest

CheckDeadline = Callable[[], None]
SolverFn = Callable[
    ["Instance | QInstance", "SolveRequest", "SolveContext | None"],
    "Schedule | QSchedule",
]


def build_solve_context(
    request: "SolveRequest",
    *,
    deadline_at: float | None = None,
    clock: Callable[[], float] = time.monotonic,
    tracer: Any = None,
    metrics: Any = None,
) -> SolveContext:
    """Construct the per-request :class:`SolveContext` the service hands
    to an engine.

    ``deadline_at`` (absolute, on ``clock``'s timeline) becomes a
    :func:`repro.service.requests.deadline_checker` hook; ``tracer`` and
    ``metrics`` are stored as-is (``tracer=None`` means untraced).  This
    is the single place the service assembles cross-cutting concerns —
    engines never see raw deadlines or registries.
    """
    check = (
        deadline_checker(deadline_at, clock) if deadline_at is not None else None
    )
    kwargs: dict[str, Any] = {"check_deadline": check, "metrics": metrics}
    if tracer is not None:
        kwargs["tracer"] = tracer
    return SolveContext(**kwargs)


def _coerce_ctx(ctx: "SolveContext | CheckDeadline | None") -> SolveContext | None:
    """Accept the legacy bare ``check_deadline`` callable in the third
    adapter slot, warning and wrapping it into a context."""
    if ctx is None or isinstance(ctx, SolveContext):
        return ctx
    warnings.warn(
        "passing a bare check_deadline callable to an engine adapter is "
        "deprecated; pass a SolveContext (see build_solve_context)",
        DeprecationWarning,
        stacklevel=3,
    )
    return SolveContext(check_deadline=ctx)


class UnknownEngineError(ValueError):
    """An engine (or sub-engine/backend) name that the registry does not
    know; the message enumerates the valid choices."""


class UnsupportedProblemError(UnknownEngineError):
    """A known engine asked to solve a problem variant outside its
    declared ``problems``; the message lists the valid (engine, problem)
    pairs.  Subclasses :class:`UnknownEngineError` so every existing
    catch site (CLI exit 2, server ``status="error"``) handles it."""

    def __init__(self, engine: str, problem: str):
        supported = ", ".join(
            name
            for name in available_engines()
            if problem in _REGISTRY[name].problems
        ) or "none"
        super().__init__(
            f"engine {engine!r} does not support problem {problem!r} "
            f"(it solves: {', '.join(sorted(_REGISTRY[engine].problems))}); "
            f"engines supporting {problem!r}: {supported}"
        )
        self.engine = engine
        self.problem = problem


@dataclass(frozen=True)
class EngineSpec:
    """Declared capabilities and entry point of one engine."""

    name: str
    description: str
    guarantee: Callable[["SolveRequest"], float]
    solve: SolverFn
    supports_deadline: bool = False
    parallelizable: bool = False
    exact: bool = False
    problems: tuple[str, ...] = (P_CMAX,)

    def supports_problem(self, problem: str) -> bool:
        """True iff the engine declares *problem* (normalized) as solvable."""
        return canonical_problem_name(problem) in self.problems


# ---------------------------------------------------------------------------
# Engine adapters: (instance, request, ctx) -> Schedule
# ---------------------------------------------------------------------------

def _solve_ptas(
    instance: Instance,
    request: "SolveRequest",
    ctx: "SolveContext | CheckDeadline | None",
) -> Schedule:
    if request.dp_engine not in SEQUENTIAL_ENGINES:
        raise UnknownEngineError(
            f"unknown DP engine {request.dp_engine!r}; available: "
            f"{sorted(SEQUENTIAL_ENGINES)}"
        )
    return ptas(
        instance,
        request.eps,
        engine=request.dp_engine,
        ctx=_coerce_ctx(ctx),
    ).schedule


def _solve_parallel_ptas(
    instance: Instance,
    request: "SolveRequest",
    ctx: "SolveContext | CheckDeadline | None",
) -> Schedule:
    if request.backend not in BACKENDS:
        raise UnknownEngineError(
            f"unknown wavefront backend {request.backend!r}; available: "
            f"{sorted(BACKENDS)}"
        )
    if request.mode not in MODES:
        raise UnknownEngineError(
            f"unknown bisection mode {request.mode!r}; available: "
            f"{sorted(MODES)}"
        )
    return parallel_ptas(
        instance,
        request.eps,
        num_workers=resolve_workers(request.workers),
        backend=request.backend,
        mode=request.mode,
        ctx=_coerce_ctx(ctx),
    ).schedule


def _solve_exact(method: str) -> SolverFn:
    def run(
        instance: Instance,
        request: "SolveRequest",
        ctx: "SolveContext | CheckDeadline | None",
    ) -> Schedule:
        from repro.exact.api import solve_exact

        return solve_exact(
            instance, method, time_limit=request.time_limit
        ).schedule

    return run


def _solve_baseline(
    fn: Callable[[Instance], Schedule],
    q_fn: Callable[[QInstance], QSchedule] | None = None,
) -> SolverFn:
    def run(
        instance: "Instance | QInstance",
        request: "SolveRequest",
        ctx: "SolveContext | CheckDeadline | None",
    ) -> "Schedule | QSchedule":
        if isinstance(instance, QInstance):
            if q_fn is None:  # pragma: no cover - capability check runs first
                raise UnsupportedProblemError(request.engine, Q_CMAX)
            return q_fn(instance)
        return fn(instance)

    return run


def _ptas_guarantee(request: "SolveRequest") -> float:
    return 1.0 + request.eps


def _lpt_guarantee(request: "SolveRequest") -> float:
    if request.problem == Q_CMAX:
        return q_lpt_worst_case_ratio(request.speeds)
    return lpt_worst_case_ratio(request.machines)


def _ls_guarantee(request: "SolveRequest") -> float:
    if request.problem == Q_CMAX:
        return q_list_worst_case_ratio(request.speeds)
    return list_scheduling_worst_case_ratio(request.machines)


_REGISTRY: dict[str, EngineSpec] = {}


def _register(spec: EngineSpec) -> None:
    _REGISTRY[spec.name] = spec


_register(
    EngineSpec(
        name="ptas",
        description="sequential Hochbaum–Shmoys PTAS (Algorithm 1)",
        guarantee=_ptas_guarantee,
        solve=_solve_ptas,
        supports_deadline=True,
    )
)
_register(
    EngineSpec(
        name="parallel_ptas",
        description="wavefront parallel PTAS (paper §III, Algorithm 3)",
        guarantee=_ptas_guarantee,
        solve=_solve_parallel_ptas,
        supports_deadline=True,
        parallelizable=True,
    )
)
_register(
    EngineSpec(
        name="lpt",
        description="Longest Processing Time first (4/3 − 1/(3m); "
        "speed-scaled ECT variant for q_cmax)",
        guarantee=_lpt_guarantee,
        solve=_solve_baseline(lpt, q_lpt),
        problems=(P_CMAX, Q_CMAX),
    )
)
_register(
    EngineSpec(
        name="ls",
        description="Graham list scheduling (2 − 1/m; earliest-completion-"
        "time variant for q_cmax)",
        guarantee=_ls_guarantee,
        solve=_solve_baseline(list_scheduling, q_list_scheduling),
        problems=(P_CMAX, Q_CMAX),
    )
)
_register(
    EngineSpec(
        name="multifit",
        description="MULTIFIT binary search over FFD (1.22 + 2^-k)",
        guarantee=lambda req: 1.22,
        solve=_solve_baseline(multifit),
    )
)
_register(
    EngineSpec(
        name="ilp",
        description="assignment MILP via HiGHS (exact, time-limited)",
        guarantee=lambda req: 1.0,
        solve=_solve_exact("ilp"),
        exact=True,
    )
)
_register(
    EngineSpec(
        name="bnb",
        description="branch and bound (exact)",
        guarantee=lambda req: 1.0,
        solve=_solve_exact("bnb"),
        exact=True,
    )
)
_register(
    EngineSpec(
        name="brute",
        description="brute force (exact, tiny instances only)",
        guarantee=lambda req: 1.0,
        solve=_solve_exact("brute"),
        exact=True,
    )
)
_register(
    EngineSpec(
        name="cp",
        description="CP-style propagate-and-branch over machine-assignment "
        "variables, bisecting the makespan target (exact; the qa "
        "cross-check oracle)",
        guarantee=lambda req: 1.0,
        solve=_solve_exact("cp"),
        exact=True,
    )
)


def solve_to_result(
    request: "SolveRequest",
    ctx: "SolveContext | None" = None,
    *,
    clock: Callable[[], float] = time.perf_counter,
) -> SolveResult:
    """Solve *request* synchronously through its registered engine.

    The one blocking solve-to-wire-type path, shared by the service's
    worker threads and the journal replay of
    :mod:`repro.store.recovery`: resolve the engine, run it under *ctx*,
    and wrap the schedule in an ``ok`` :class:`SolveResult` carrying the
    engine's declared guarantee.  Engine errors propagate — callers own
    the degrade/abort policy.
    """
    spec = get_engine(request.engine, problem=request.problem)
    instance = request.instance()
    t0 = clock()
    schedule = spec.solve(instance, request, ctx)
    return SolveResult(
        request_id=request.request_id,
        status=STATUS_OK,
        engine=canonical_engine_name(request.engine),
        makespan=schedule.makespan,
        assignment=schedule.assignment,
        guarantee=spec.guarantee(request),
        elapsed=clock() - t0,
    )


def fallback_result(
    request: "SolveRequest", *, degraded: bool = True
) -> SolveResult:
    """The problem-appropriate cheap fallback for *request*: plain LPT
    for ``p_cmax``, speed-scaled LPT for ``q_cmax``, each tagged with
    its own worst-case guarantee.

    This is the one degrade path shared by the server's deadline
    handling, the pooled front-end's dead-worker replacement, and the
    worker processes — so "what do we answer when the real engine
    can't" stays consistent (and problem-correct) everywhere.
    """
    from repro.model.problem import get_problem

    schedule, guarantee = get_problem(request.problem).baseline(
        request.instance()
    )
    return SolveResult(
        request_id=request.request_id,
        status=STATUS_OK,
        engine="lpt",
        makespan=schedule.makespan,
        assignment=schedule.assignment,
        guarantee=guarantee,
        degraded=degraded,
    )


def canonical_engine_name(name: str) -> str:
    """Normalize an engine name (dashes == underscores, case-folded)."""
    return name.strip().lower().replace("-", "_")


def available_engines() -> tuple[str, ...]:
    """The registered engine names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_engine(name: str, problem: str | None = None) -> EngineSpec:
    """Resolve *name* to its :class:`EngineSpec`, optionally checking it
    supports *problem*.

    Raises
    ------
    UnknownEngineError
        If the (normalized) name is not registered; the message lists the
        valid names so callers can surface it verbatim.
    UnsupportedProblemError
        If *problem* is given and outside the engine's declared
        ``problems``; the message lists the valid (engine, problem)
        pairs.
    """
    canonical = canonical_engine_name(name)
    spec = _REGISTRY.get(canonical)
    if spec is None:
        raise UnknownEngineError(
            f"unknown engine {name!r}; available: {', '.join(available_engines())}"
        )
    if problem is not None:
        problem = canonical_problem_name(problem)
        if problem not in spec.problems:
            raise UnsupportedProblemError(canonical, problem)
    return spec


def engine_problem_pairs() -> tuple[tuple[str, str], ...]:
    """Every supported (engine, problem) pair, sorted — the capability
    matrix surfaced by ``op=stats`` and the docs."""
    return tuple(
        (name, problem)
        for name in available_engines()
        for problem in _REGISTRY[name].problems
    )
