"""Shard routing for the multi-process solver pool.

The pool supervisor (:mod:`repro.service.supervisor`) routes every
request to one of N worker processes by the *canonical sorted-multiset
instance key* — the identity the result cache
(:mod:`repro.service.cache`) and the durable store (:mod:`repro.store`)
already share.  Routing on that key, rather than on raw request bytes
or round-robin, is what keeps the per-worker machinery effective:

* permuted / renumbered duplicates of an instance (the twins real
  traffic produces) land on the *same* worker, so its memory cache and
  warm DP configuration cache serve them without re-solving;
* the supervisor's single-flight coalescing is trivially shard-aware —
  one canonical key maps to one shard, so a thundering herd of twins
  collapses onto one in-flight solve on one worker.

The hash is SHA-256 over the canonical JSON of the key — deterministic
across processes, platforms, and ``PYTHONHASHSEED`` (Python's builtin
``hash`` is none of those for strings), so a request replays to the
same shard after a restart and tests can pin expected placements.
"""

from __future__ import annotations

import hashlib
import json

from repro.service.cache import CacheKey, canonical_key
from repro.service.requests import SolveRequest

__all__ = ["shard_key", "shard_index", "shard_of_request", "tenant_shard"]


def shard_key(request: SolveRequest) -> CacheKey:
    """The permutation-invariant routing identity of *request*.

    Exactly :func:`repro.service.cache.canonical_key` — ``(problem,
    sorted times, sorted speeds, machines, engine, eps)`` — re-exported
    under the routing vocabulary so call sites say what they mean.
    """
    return canonical_key(request)


def shard_index(key: CacheKey, num_shards: int) -> int:
    """The shard (worker index in ``range(num_shards)``) owning *key*.

    Stable: depends only on the key's canonical JSON, never on process
    state.  Uniform: the top 64 bits of the SHA-256 digest mod
    ``num_shards``.

    The hashed body for ``p_cmax`` keys is the historical four-field
    form, so pinned placements (and the durable store's addresses, which
    hash the same body) survive the problem-variant upgrade; other
    problems add their tag and speed multiset.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    problem, times, speeds, machines, engine, eps = key
    body_dict = {
        "times": list(times),
        "machines": int(machines),
        "engine": engine,
        "eps": eps,
    }
    if problem != "p_cmax":
        body_dict["problem"] = problem
        body_dict["speeds"] = list(speeds)
    body = json.dumps(body_dict, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(body.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % num_shards


def shard_of_request(request: SolveRequest, num_shards: int) -> int:
    """Convenience composition: the shard owning *request*."""
    return shard_index(shard_key(request), num_shards)


def tenant_shard(tenant: str, num_shards: int) -> int:
    """The shard owning *tenant*'s live-schedule session (``op=stream``).

    Stream events are stateful, so the routing identity is the tenant
    id, not the instance content: every event of one tenant must reach
    the one worker holding its :class:`repro.online.live.LiveSchedule`.
    Same determinism contract as :func:`shard_index` — SHA-256 over the
    tenant string, stable across restarts and ``PYTHONHASHSEED``.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if not tenant:
        raise ValueError("tenant must be a non-empty string")
    digest = hashlib.sha256(tenant.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % num_shards
