"""The asyncio scheduling service: JSON-lines front-end over the solvers.

Architecture (see ``docs/service.md`` for the full reference)::

    client ──JSON line──▶ connection handler ──▶ SolveService.handle
                                                   │ 1. result cache
                                                   │ 2. admission gate
                                                   │ 3. micro-batcher (small)
                                                   │    or direct dispatch
                                                   ▼
                                        ThreadPoolExecutor workers
                                          └─ registry engines; parallel
                                             PTAS draws its wavefront
                                             workers from the persistent
                                             reusable pools of
                                             repro.parallel.executor

Requests are solved off the event loop via ``run_in_executor``; the
event loop only parses, batches, and enforces deadlines.  *Compatible*
small requests (same engine and ``eps``, at most ``batch_max_jobs``
jobs) queued within ``batch_window`` seconds are shipped to one worker
as a single batch, amortizing executor round-trips under high request
rates; heavy solves dispatch individually.

Graceful degradation: a request with a ``deadline`` gets a deadline hook
threaded into the PTAS bisection through its per-request
:class:`~repro.core.context.SolveContext` (probes abort mid-solve); when
the deadline fires, the service returns the LPT schedule for the same
instance tagged ``degraded=true`` with Graham's ``4/3 - 1/(3m)``
guarantee — a worse bound, never a timeout.  Engines that cannot be
cancelled (the exact solvers) are abandoned in their worker thread and
degraded from the event loop.

Observability: every deadline-capable solve runs under a fresh
:class:`repro.obs.Tracer`; its per-phase summary (probe / dp / level /
… wall time and counters) is folded into the metrics registry after each
request, so ``{"op": "stats"}`` exposes ``trace.phase.<kind>.seconds``
histograms alongside the service counters.

Durability (opt-in, see ``docs/persistence.md``): with a
:class:`repro.store.ResultStore` and :class:`repro.store.WriteAheadJournal`
attached, the cache reads/writes through to disk, every admitted request
is journaled before solving and committed after answering, SIGTERM /
SIGINT shut down through the same graceful path as the ``shutdown`` op,
and traces can be archived next to the results they explain.
"""

from __future__ import annotations

import asyncio
import inspect
import json
import signal
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.model.instance import Instance
from repro.model.qinstance import QInstance
from repro.service.admission import AdmissionController
from repro.service.cache import CacheKey, ResultCache, canonical_key
from repro.service.metrics import (
    MetricsRegistry,
    record_dp_cache,
    record_stats_source,
)
from repro.obs import Tracer, publish_phase_summary, trace_to_payload
from repro.service.registry import (
    EngineSpec,
    UnknownEngineError,
    build_solve_context,
    canonical_engine_name,
    fallback_result,
    get_engine,
    solve_to_result,
)

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.service.supervisor import PooledSolveService
    from repro.store.journal import WriteAheadJournal
    from repro.store.resultstore import ResultStore
from repro.online.session import SessionManager
from repro.service.requests import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_REJECTED,
    DeadlineExceeded,
    SolveRequest,
    SolveResult,
    StreamRequest,
    StreamResult,
)

#: Default TCP port (no registered meaning; "Cmax" on a phone keypad-ish).
DEFAULT_PORT = 8357


@dataclass
class _Job:
    """One admitted request travelling through the dispatch machinery."""

    request: SolveRequest
    spec: EngineSpec
    instance: Instance | QInstance
    deadline_at: float | None
    admitted_at: float
    future: "asyncio.Future[SolveResult]"

    @property
    def batch_key(self) -> tuple[str, str, float]:
        return (
            self.request.problem,
            canonical_engine_name(self.request.engine),
            self.request.eps,
        )


class SolveService:
    """Request orchestrator: cache → admission → batch/dispatch → degrade.

    The service is transport-agnostic — :meth:`handle` takes a
    :class:`SolveRequest` and returns a :class:`SolveResult`; the
    JSON-lines TCP front-end (:func:`start_server` / :func:`serve`) is
    one thin consumer, and tests or in-process callers are another.
    """

    def __init__(
        self,
        *,
        cache: ResultCache | None = None,
        admission: AdmissionController | None = None,
        metrics: MetricsRegistry | None = None,
        max_workers: int = 4,
        batch_window: float = 0.005,
        batch_max_size: int = 16,
        batch_max_jobs: int = 64,
        default_deadline: float | None = None,
        clock: Callable[[], float] = time.monotonic,
        store: "ResultStore | None" = None,
        journal: "WriteAheadJournal | None" = None,
        archive_traces: bool = False,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if batch_window < 0:
            raise ValueError("batch_window must be >= 0")
        if batch_max_size < 1:
            raise ValueError("batch_max_size must be >= 1")
        self.cache = cache if cache is not None else ResultCache()
        self.store = store
        self.journal = journal
        self.archive_traces = archive_traces
        if store is not None and self.cache.store is None:
            # Wire the durable tier under the memory cache so hits flow
            # memory → disk → solve without the caller doing it by hand.
            self.cache.store = store
        self.admission = admission if admission is not None else AdmissionController()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.max_workers = max_workers
        self.batch_window = batch_window
        self.batch_max_size = batch_max_size
        self.batch_max_jobs = batch_max_jobs
        self.default_deadline = default_deadline
        self._clock = clock
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-solve"
        )
        self._batch_queue: asyncio.Queue[_Job] | None = None
        self._batcher: asyncio.Task[None] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown_event: asyncio.Event | None = None
        self._busy_workers = 0
        self._inflight: dict[CacheKey, asyncio.Future[None]] = {}
        #: Live-schedule sessions behind ``op=stream`` — share the
        #: service's cache (tenant re-solves and one-shot requests
        #: answer each other), store (durable snapshots), and metrics
        #: (``tenant.<id>.*`` gauges).
        self.sessions = SessionManager(
            store=self.store, cache=self.cache, metrics=self.metrics, clock=clock
        )

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    async def handle(self, request: SolveRequest) -> SolveResult:
        """Serve one request end to end (cache → admission → solve)."""
        t0 = self._clock()
        self.metrics.counter("requests_total").inc()
        self.metrics.counter(f"requests.problem.{request.problem}").inc()
        try:
            request.instance()  # eager structural validation
            get_engine(request.engine, problem=request.problem)
        except (UnknownEngineError, ValueError, TypeError) as exc:
            self.metrics.counter("requests_invalid").inc()
            return SolveResult(
                request_id=request.request_id,
                status=STATUS_ERROR,
                engine=request.engine,
                error=str(exc),
            )

        hit = self.cache.get(request)
        if hit is not None:
            self.metrics.counter("cache_hits").inc()
            self.metrics.histogram("request_latency_seconds").observe(
                self._clock() - t0
            )
            return hit
        self.metrics.counter("cache_misses").inc()

        # Single-flight coalescing: a concurrent duplicate (same
        # canonical key — a thundering herd of permuted twins) waits for
        # the leader instead of burning a worker on identical work, then
        # reads the freshly populated cache.  If the leader's answer was
        # not cacheable (degraded / failed), fall through and solve.
        key = canonical_key(request)
        leader = key not in self._inflight
        if leader:
            self._inflight[key] = asyncio.get_running_loop().create_future()
        else:
            self.metrics.counter("requests_coalesced").inc()
            try:
                await asyncio.shield(self._inflight[key])
            except asyncio.CancelledError:
                raise
            except Exception:
                pass
            hit = self.cache.get(request)
            if hit is not None:
                self.metrics.counter("cache_hits").inc()
                self.metrics.histogram("request_latency_seconds").observe(
                    self._clock() - t0
                )
                return hit

        try:
            return await self._admit_and_solve(request, t0)
        finally:
            if leader:
                waiters = self._inflight.pop(key)
                if not waiters.done():
                    waiters.set_result(None)

    async def handle_stream(self, request: StreamRequest) -> StreamResult:
        """Serve one live-schedule event (``op=stream``).

        The session manager serializes events internally; running
        ``apply`` in the executor keeps any drift-triggered PTAS
        re-solve off the event loop, exactly like a one-shot solve.
        """
        self.metrics.counter("stream_events_total").inc()
        result = await asyncio.get_running_loop().run_in_executor(
            self._executor, self.sessions.apply, request
        )
        if not result.ok:
            self.metrics.counter("stream_errors").inc()
        return result

    async def _admit_and_solve(
        self, request: SolveRequest, t0: float
    ) -> SolveResult:
        instance = request.instance()
        spec = get_engine(request.engine, problem=request.problem)
        decision = self.admission.try_admit(request)
        if not decision.admitted:
            self.metrics.counter("requests_shed").inc()
            return SolveResult(
                request_id=request.request_id,
                status=STATUS_REJECTED,
                engine=request.engine,
                retry_after=decision.retry_after,
                error=decision.reason,
            )

        deadline = (
            request.deadline if request.deadline is not None else self.default_deadline
        )
        deadline_at = None if deadline is None else t0 + deadline
        job = _Job(
            request=request,
            spec=spec,
            instance=instance,
            deadline_at=deadline_at,
            admitted_at=self._clock(),
            future=asyncio.get_running_loop().create_future(),
        )
        # Write-ahead: an admitted request is journaled before its solve
        # starts, and marked committed only after a response exists and
        # any cacheable answer has reached the store — so a crash at any
        # point in between is replayed on restart (docs/persistence.md).
        entry = self.journal.begin(request) if self.journal is not None else None
        try:
            if self._is_batchable(job):
                await self._enqueue_batch(job)
            else:
                self._dispatch([job])
            result = await self._await_with_deadline(job)
        finally:
            self.admission.release(decision)
        if result.ok and not result.degraded:
            self.cache.put(request, result)
        if entry is not None:
            self.journal.commit(entry)
        self.metrics.histogram("request_latency_seconds").observe(self._clock() - t0)
        return result

    def _is_batchable(self, job: _Job) -> bool:
        """Small, cancellable-or-instant work rides the micro-batcher;
        exact engines and big instances get a worker to themselves."""
        return (
            self.batch_window > 0
            and not job.spec.exact
            and job.request.num_jobs <= self.batch_max_jobs
        )

    async def _await_with_deadline(self, job: _Job) -> SolveResult:
        """Wait for the job; degrade from the event loop if a deadline
        passes on an engine that cannot cancel itself (its worker thread
        is abandoned — it still occupies a slot until it finishes)."""
        if job.deadline_at is None or job.spec.supports_deadline:
            return await job.future
        remaining = max(0.0, job.deadline_at - self._clock())
        try:
            return await asyncio.wait_for(asyncio.shield(job.future), remaining)
        except asyncio.TimeoutError:
            self.metrics.counter("solves_abandoned").inc()
            job.future.add_done_callback(lambda f: f.exception())  # reap quietly
            return self._degrade(job)

    # ------------------------------------------------------------------
    # Batching and dispatch
    # ------------------------------------------------------------------
    async def _enqueue_batch(self, job: _Job) -> None:
        loop = asyncio.get_running_loop()
        if self._batch_queue is None or self._loop is not loop:
            # First use on this event loop (or the loop changed between
            # asyncio.run() invocations in tests): fresh queue + batcher.
            self._loop = loop
            self._batch_queue = asyncio.Queue()
            self._batcher = loop.create_task(self._batch_loop())
        await self._batch_queue.put(job)

    async def _batch_loop(self) -> None:
        """Collect compatible jobs for up to ``batch_window`` seconds,
        then dispatch each compatibility group as one executor call."""
        assert self._batch_queue is not None
        while True:
            batch = [await self._batch_queue.get()]
            horizon = self._clock() + self.batch_window
            while len(batch) < self.batch_max_size:
                timeout = horizon - self._clock()
                if timeout <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._batch_queue.get(), timeout)
                    )
                except asyncio.TimeoutError:
                    break
            groups: dict[tuple[str, str, float], list[_Job]] = {}
            for job in batch:
                groups.setdefault(job.batch_key, []).append(job)
            self.metrics.counter("batches_total").inc(len(groups))
            self.metrics.histogram("batch_size").observe(len(batch))
            for group in groups.values():
                self._dispatch(group)

    def _dispatch(self, jobs: list[_Job]) -> None:
        """Ship a group of jobs to one worker thread."""
        loop = asyncio.get_running_loop()
        self._busy_workers += 1
        self.metrics.gauge("executor_busy").set(self._busy_workers)

        def run() -> list[SolveResult]:
            return [self._solve_one(job) for job in jobs]

        def done(fut: "asyncio.Future[list[SolveResult]]") -> None:
            self._busy_workers -= 1
            self.metrics.gauge("executor_busy").set(self._busy_workers)
            if fut.cancelled():
                for job in jobs:
                    if not job.future.done():
                        job.future.cancel()
                return
            exc = fut.exception()
            for job, result in zip(
                jobs, fut.result() if exc is None else [None] * len(jobs)
            ):
                if job.future.done():
                    continue
                if exc is not None:
                    job.future.set_exception(exc)
                else:
                    job.future.set_result(result)

        task = loop.run_in_executor(self._executor, run)
        task.add_done_callback(done)

    # ------------------------------------------------------------------
    # Worker-side solve (runs in an executor thread)
    # ------------------------------------------------------------------
    def _solve_one(self, job: _Job) -> SolveResult:
        self.metrics.histogram("queue_wait_seconds").observe(
            self._clock() - job.admitted_at
        )
        request, spec = job.request, job.spec
        if job.deadline_at is not None and self._clock() > job.deadline_at:
            return self._degrade(job)
        tracer = Tracer()
        ctx = build_solve_context(
            request,
            deadline_at=(
                job.deadline_at
                if job.deadline_at is not None and spec.supports_deadline
                else None
            ),
            clock=self._clock,
            tracer=tracer,
            metrics=self.metrics,
        )
        try:
            result = solve_to_result(request, ctx, clock=self._clock)
        except DeadlineExceeded:
            publish_phase_summary(tracer, self.metrics)
            return self._degrade(job)
        except UnknownEngineError as exc:
            self.metrics.counter("requests_invalid").inc()
            return SolveResult(
                request_id=request.request_id,
                status=STATUS_ERROR,
                engine=request.engine,
                error=str(exc),
            )
        publish_phase_summary(tracer, self.metrics)
        self._archive_trace(request, tracer)
        return result

    def _archive_trace(self, request: SolveRequest, tracer: Tracer) -> None:
        """Persist this solve's trace into the durable store (opt-in)."""
        if self.store is None or not self.archive_traces:
            return
        name = request.request_id or canonical_key(request)
        try:
            self.store.archive_trace(str(name), trace_to_payload(tracer))
            self.metrics.counter("traces_archived").inc()
        except OSError:
            pass  # archival is best-effort; never fail the solve

    def _degrade(self, job: _Job) -> SolveResult:
        """The anytime fallback: problem-appropriate LPT in O(n log n),
        tagged ``degraded`` (:func:`repro.service.registry.fallback_result`)."""
        self.metrics.counter("degradations_total").inc()
        return fallback_result(job.request)

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """The ``{"op": "stats"}`` payload: every subsystem's counters."""
        self.metrics.set_many(
            "result_cache", {k: float(v) for k, v in self.cache.stats().items()}
        )
        self.metrics.set_many(
            "admission", {k: float(v) for k, v in self.admission.stats().items()}
        )
        if self.store is not None:
            record_stats_source(self.metrics, "store", self.store)
        if self.journal is not None:
            record_stats_source(self.metrics, "journal", self.journal)
        record_dp_cache(self.metrics)
        self.metrics.gauge("pool_utilization").set(
            self._busy_workers / self.max_workers
        )
        self.metrics.gauge("stream_sessions").set(float(self.sessions.num_sessions))
        return self.metrics.snapshot()

    def healthcheck(self) -> dict[str, Any]:
        """The ``{"op": "healthcheck"}`` payload for the single-process
        service: alive iff we got here (the pooled service's coroutine
        counterpart in :mod:`repro.service.supervisor` probes workers)."""
        return {
            "ok": True,
            "mode": "single",
            "workers": 1,
            "executor_busy": self._busy_workers,
        }

    def request_shutdown(self) -> None:
        """Ask :func:`serve` to wind down (set by the ``shutdown`` op)."""
        if self._shutdown_event is not None:
            self._shutdown_event.set()

    async def aclose(self) -> None:
        """Stop the batcher, release the worker pool, and flush the
        persistence layer — a clean exit leaves the journal empty and
        every segment closed."""
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except (asyncio.CancelledError, RuntimeError):
                pass
            self._batcher = None
            self._batch_queue = None
        self._executor.shutdown(wait=False, cancel_futures=True)
        if self.journal is not None:
            self.journal.close()
        if self.store is not None:
            self.store.close()


# ---------------------------------------------------------------------------
# JSON-lines TCP front-end
# ---------------------------------------------------------------------------

async def _write_line(
    writer: asyncio.StreamWriter, lock: asyncio.Lock, payload: str
) -> None:
    async with lock:
        writer.write(payload.encode("utf-8") + b"\n")
        await writer.drain()


async def _maybe_await(value):
    """Normalize sync/async service methods: ``SolveService.stats`` is a
    plain call, ``PooledSolveService.stats`` is a coroutine (it
    round-trips to worker processes).  The front-end serves both."""
    if inspect.isawaitable(value):
        return await value
    return value


async def _handle_connection(
    service: "SolveService | PooledSolveService",
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """One client connection: requests in, responses out (possibly out of
    order — correlate via ``request_id``).  Control ops: ``ping``,
    ``stats``, ``healthcheck``, ``shutdown``."""
    lock = asyncio.Lock()
    pending: set[asyncio.Task[None]] = set()

    async def respond(request: SolveRequest) -> None:
        result = await service.handle(request)
        await _write_line(writer, lock, result.to_json())

    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            text = line.decode("utf-8", errors="replace").strip()
            if not text:
                continue
            try:
                data = json.loads(text)
            except json.JSONDecodeError as exc:
                await _write_line(
                    writer,
                    lock,
                    SolveResult(
                        status=STATUS_ERROR, error=f"malformed JSON: {exc}"
                    ).to_json(),
                )
                continue
            if isinstance(data, dict) and "op" in data:
                op = data["op"]
                if op == "ping":
                    await _write_line(writer, lock, json.dumps({"op": "pong"}))
                elif op == "stats":
                    stats = await _maybe_await(service.stats())
                    await _write_line(
                        writer, lock, json.dumps({"op": "stats", "stats": stats})
                    )
                elif op == "healthcheck":
                    health = await _maybe_await(service.healthcheck())
                    await _write_line(
                        writer,
                        lock,
                        json.dumps({"op": "healthcheck", **health}),
                    )
                elif op == "stream":
                    # Handled inline (awaited before the next readline):
                    # stream events are stateful, and per-connection
                    # arrival order is the ordering contract a tenant's
                    # session relies on.
                    try:
                        stream_request = StreamRequest.from_dict(data)
                    except (ValueError, TypeError, KeyError) as exc:
                        await _write_line(
                            writer,
                            lock,
                            StreamResult(
                                status=STATUS_ERROR, error=str(exc)
                            ).to_json(),
                        )
                        continue
                    try:
                        stream_result = await service.handle_stream(
                            stream_request
                        )
                    except Exception as exc:  # noqa: BLE001 — keep the
                        # connection (and its other tenants' sessions)
                        # alive; the event itself is reported failed.
                        stream_result = StreamResult(
                            request_id=stream_request.request_id,
                            tenant=stream_request.tenant,
                            action=stream_request.action,
                            status=STATUS_ERROR,
                            error=f"{type(exc).__name__}: {exc}",
                        )
                    await _write_line(writer, lock, stream_result.to_json())
                elif op == "shutdown":
                    await _write_line(writer, lock, json.dumps({"op": "bye"}))
                    service.request_shutdown()
                    break
                else:
                    await _write_line(
                        writer,
                        lock,
                        SolveResult(
                            status=STATUS_ERROR, error=f"unknown op {op!r}"
                        ).to_json(),
                    )
                continue
            try:
                request = SolveRequest.from_dict(data)
            except ValueError as exc:
                await _write_line(
                    writer,
                    lock,
                    SolveResult(status=STATUS_ERROR, error=str(exc)).to_json(),
                )
                continue
            task = asyncio.create_task(respond(request))
            pending.add(task)
            task.add_done_callback(pending.discard)
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
    except asyncio.CancelledError:
        # Loop/server teardown cancels live connection tasks.  Exiting
        # cleanly (after the finally's close below) keeps
        # asyncio.streams' done-callback from logging every shutdown as
        # "Exception in callback ... CancelledError".
        pass
    finally:
        for task in pending:
            task.cancel()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass


async def start_server(
    service: "SolveService | PooledSolveService",
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
) -> asyncio.AbstractServer:
    """Bind the JSON-lines front-end; the caller owns the returned
    server's lifetime (tests use ``port=0`` for an ephemeral port)."""
    service._shutdown_event = asyncio.Event()
    return await asyncio.start_server(
        lambda r, w: _handle_connection(service, r, w), host, port
    )


async def serve(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    *,
    service: "SolveService | PooledSolveService | None" = None,
    log_interval: float | None = None,
    on_ready: Callable[[str, int], None] | None = None,
) -> None:
    """Run the service until a ``shutdown`` op, SIGTERM/SIGINT, or
    cancellation.

    ``log_interval`` enables the periodic metrics heartbeat line;
    ``on_ready`` receives the bound ``(host, port)`` once listening.
    SIGTERM and SIGINT trigger the same graceful path as the
    ``shutdown`` op: stop accepting, then :meth:`SolveService.aclose`
    flushes the journal and closes segments, so a signal-terminated
    server leaves no uncommitted entries behind for work it answered.
    """
    svc = service if service is not None else SolveService()
    starter = getattr(svc, "start", None)
    if starter is not None:
        # Pooled service: spawn the workers before accepting traffic so
        # the first request never pays the pool's cold start.
        await starter()
    server = await start_server(svc, host, port)
    bound = server.sockets[0].getsockname()[:2] if server.sockets else (host, port)
    loop = asyncio.get_running_loop()
    handled_signals: list[signal.Signals] = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, svc.request_shutdown)
            handled_signals.append(sig)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-POSIX loop; Ctrl-C still raises KeyboardInterrupt
    if on_ready is not None:
        on_ready(bound[0], bound[1])

    async def heartbeat() -> None:
        assert log_interval is not None
        while True:
            await asyncio.sleep(log_interval)
            await _maybe_await(svc.stats())
            print(svc.metrics.render_line(), flush=True)

    beat = (
        asyncio.get_running_loop().create_task(heartbeat())
        if log_interval is not None and log_interval > 0
        else None
    )
    try:
        assert svc._shutdown_event is not None
        await svc._shutdown_event.wait()
    finally:
        if beat is not None:
            beat.cancel()
        for sig in handled_signals:
            loop.remove_signal_handler(sig)
        server.close()
        await server.wait_closed()
        await svc.aclose()


# ---------------------------------------------------------------------------
# Client helpers (used by ``repro-pcmax submit`` and the tests)
# ---------------------------------------------------------------------------

async def submit(
    host: str, port: int, request: SolveRequest, *, timeout: float | None = 60.0
) -> SolveResult:
    """Submit one request over a fresh connection and await its result."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(request.to_json().encode("utf-8") + b"\n")
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(), timeout)
        if not line:
            raise ConnectionError("server closed the connection without replying")
        return SolveResult.from_json(line.decode("utf-8"))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def replay(
    host: str,
    port: int,
    requests: "list[SolveRequest]",
    *,
    concurrency: int = 8,
    timeout: float | None = 120.0,
) -> list[tuple[SolveResult, float]]:
    """Replay *requests* against a running server over *concurrency*
    persistent connections and return ``(result, latency_seconds)`` in
    submission order.

    Each connection drains a shared queue serially (one request in
    flight per connection — latencies stay honest), so total load on
    the server is exactly *concurrency*-way.  Used by
    ``benchmarks/bench_service.py`` and ``repro-pcmax submit --repeat``.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    queue: asyncio.Queue[tuple[int, SolveRequest]] = asyncio.Queue()
    for item in enumerate(requests):
        queue.put_nowait(item)
    out: list[tuple[SolveResult, float] | None] = [None] * len(requests)

    async def lane() -> None:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            while True:
                try:
                    index, request = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                t0 = time.monotonic()
                writer.write(request.to_json().encode("utf-8") + b"\n")
                await writer.drain()
                line = await asyncio.wait_for(reader.readline(), timeout)
                if not line:
                    raise ConnectionError(
                        "server closed the connection mid-replay"
                    )
                out[index] = (
                    SolveResult.from_json(line.decode("utf-8")),
                    time.monotonic() - t0,
                )
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    await asyncio.gather(*(lane() for _ in range(min(concurrency, len(requests)) or 1)))
    return [item for item in out if item is not None]


async def stream_events(
    host: str,
    port: int,
    requests: "list[StreamRequest]",
    *,
    timeout: float | None = 120.0,
) -> "list[StreamResult]":
    """Send a tenant's stream events over one connection, strictly in
    order (each result is awaited before the next event is written —
    the ordering the session protocol promises)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        results: list[StreamResult] = []
        for request in requests:
            writer.write(request.to_json().encode("utf-8") + b"\n")
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout)
            if not line:
                raise ConnectionError(
                    "server closed the connection mid-stream"
                )
            results.append(StreamResult.from_json(line.decode("utf-8")))
        return results
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def send_op(
    host: str, port: int, op: str, *, timeout: float | None = 10.0
) -> dict:
    """Send a control op (``ping`` / ``stats`` / ``healthcheck`` /
    ``shutdown``)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(json.dumps({"op": op}).encode("utf-8") + b"\n")
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(), timeout)
        if not line:
            raise ConnectionError("server closed the connection without replying")
        return json.loads(line.decode("utf-8"))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
