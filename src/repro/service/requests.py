"""Wire types of the scheduling service.

A :class:`SolveRequest` carries one scheduling instance — a *problem*
tag (``p_cmax`` on identical machines, the default, or ``q_cmax`` on
uniformly related machines with a ``speeds`` vector) — plus solver
selection (engine name, ``eps``, tuning knobs) and an optional
*deadline* — a per-request wall-clock budget in seconds.  A
:class:`SolveResult` carries the outcome: the assignment, its makespan
(an integer load for ``p_cmax``, a fractional completion time for
``q_cmax``), the a-priori guarantee factor of the engine that actually
produced it, and service metadata (cache hit, degradation, rejection).

The envelope is versioned by an explicit ``protocol`` field:

* **v1** (``protocol`` absent or ``1``) — the historical ``P || Cmax``
  envelope.  Requests may not carry ``problem``/``speeds``; existing
  clients keep working unchanged.
* **v2** (``protocol: 2``) — adds the ``problem`` axis and ``speeds``.

Unknown versions are rejected with a :class:`ValueError` whose message
names the supported versions — the server turns that into a typed
``status="error"`` response line.

Both types serialize to single-line JSON objects — the unit of the
service's JSON-lines protocol (``docs/service.md``).  Deserialization is
strict about structure (missing/odd fields raise :class:`ValueError`
rather than producing half-formed requests) because the bytes arrive
from a socket.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, replace
from typing import Callable

from repro.model.instance import Instance
from repro.model.problem import P_CMAX, Q_CMAX, canonical_problem_name
from repro.model.qinstance import QInstance, QSchedule
from repro.model.schedule import Schedule

#: Protocol version this library speaks natively.
PROTOCOL_VERSION = 2

#: Envelope versions the service accepts.
SUPPORTED_PROTOCOLS = (1, 2)


def _check_protocol(value: object) -> int:
    """Validate a wire ``protocol`` field; returns the int version."""
    try:
        version = int(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise ValueError(
            f"protocol must be an integer, got {value!r}"
        ) from None
    if version not in SUPPORTED_PROTOCOLS:
        supported = ", ".join(str(v) for v in SUPPORTED_PROTOCOLS)
        raise ValueError(
            f"unsupported protocol version {version}; "
            f"this service supports versions {supported}"
        )
    return version


class DeadlineExceeded(Exception):
    """Raised (by a ``check_deadline`` callback) when a solve overruns
    its per-request budget; the service catches it and degrades to LPT."""


#: Result status values.
STATUS_OK = "ok"
STATUS_REJECTED = "rejected"
STATUS_ERROR = "error"


@dataclass(frozen=True)
class SolveRequest:
    """One solve order: an instance plus engine selection and budget.

    Parameters
    ----------
    times:
        Positive integer processing times, one per job.
    machines:
        Number of machines ``m``.  For ``q_cmax`` it must equal
        ``len(speeds)``.
    problem:
        Problem variant (:func:`repro.model.available_problems`):
        ``p_cmax`` (default, identical machines) or ``q_cmax``
        (uniformly related machines; requires ``speeds``).
    speeds:
        Positive integer machine speeds, one per machine — required for
        ``q_cmax``, forbidden for ``p_cmax``.
    protocol:
        Wire envelope version.  Requests built in-process default to
        the current version; on the wire, an absent field means v1
        (which cannot carry ``problem``/``speeds``).
    engine:
        Registry engine name (:func:`repro.service.registry.available_engines`);
        dashes and underscores are interchangeable (``parallel-ptas`` ==
        ``parallel_ptas``).
    eps:
        Relative error for the PTAS engines (ignored by the baselines).
    deadline:
        Wall-clock budget in seconds for this request, measured from
        admission.  ``None`` means unbounded.  When a deadline-capable
        engine overruns, the service returns the LPT schedule tagged
        ``degraded=True`` instead of timing out the client.
    dp_engine:
        Sequential DP engine for ``ptas`` (see
        :data:`repro.core.dp.SEQUENTIAL_ENGINES`).
    workers / backend / mode:
        Worker count, wavefront backend, and bisection mode for
        ``parallel_ptas``.  ``workers`` may be the string ``"auto"`` —
        resolved server-side to the CPUs the process can actually use
        (:func:`repro.parallel.cpus.resolve_workers`).  ``mode`` is one
        of :data:`repro.core.ptas.MODES` (``wavefront`` / ``speculative``
        / ``auto``).
    time_limit:
        Budget forwarded to the exact ``ilp`` solver.
    request_id:
        Opaque client-chosen correlation id, echoed in the result.
    """

    times: tuple[int, ...]
    machines: int
    problem: str = P_CMAX
    speeds: tuple[int, ...] = ()
    protocol: int = PROTOCOL_VERSION
    engine: str = "ptas"
    eps: float = 0.3
    deadline: float | None = None
    dp_engine: str = "dominance"
    workers: int | str = 4
    backend: str = "thread"
    mode: str = "wavefront"
    time_limit: float | None = None
    request_id: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "times", tuple(int(t) for t in self.times))
        object.__setattr__(self, "problem", canonical_problem_name(self.problem))
        object.__setattr__(self, "speeds", tuple(int(s) for s in self.speeds))
        object.__setattr__(self, "protocol", _check_protocol(self.protocol))
        if self.protocol < 2 and (self.problem != P_CMAX or self.speeds):
            raise ValueError(
                "fields 'problem'/'speeds' require protocol version 2 "
                f"(request declared protocol {self.protocol})"
            )
        if self.problem == Q_CMAX:
            if not self.speeds:
                raise ValueError("problem 'q_cmax' requires a 'speeds' vector")
            if self.machines != len(self.speeds):
                raise ValueError(
                    f"machines={self.machines} disagrees with "
                    f"{len(self.speeds)} speeds"
                )
        elif self.speeds:
            raise ValueError(
                f"problem {self.problem!r} does not take machine speeds"
            )
        if self.deadline is not None and self.deadline < 0:
            raise ValueError(f"deadline must be >= 0, got {self.deadline}")
        if self.eps <= 0:
            raise ValueError(f"eps must be positive, got {self.eps}")
        if isinstance(self.workers, str):
            if self.workers != "auto":
                raise ValueError(
                    f"workers must be a positive int or 'auto', got {self.workers!r}"
                )
        elif self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")

    @property
    def num_jobs(self) -> int:
        return len(self.times)

    def instance(self) -> Instance | QInstance:
        """The validated instance this request describes —
        :class:`Instance` for ``p_cmax``, :class:`QInstance` for
        ``q_cmax``."""
        if self.problem == Q_CMAX:
            return QInstance(self.times, self.speeds)
        return Instance(self.times, self.machines)

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe dict form (``times`` as a list)."""
        d = asdict(self)
        d["times"] = list(self.times)
        return d

    def to_json(self) -> str:
        """One protocol line (compact JSON, no newline)."""
        return json.dumps(self.to_dict(), separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: dict) -> "SolveRequest":
        """Strictly parse a decoded JSON object into a request."""
        if not isinstance(data, dict):
            raise ValueError(f"request must be a JSON object, got {type(data).__name__}")
        try:
            times = data["times"]
            machines = data["machines"]
        except KeyError as exc:
            raise ValueError(f"request is missing required field {exc.args[0]!r}") from None
        known = {f for f in cls.__dataclass_fields__}
        extra = set(data) - known
        if extra:
            raise ValueError(f"unknown request field(s): {sorted(extra)}")
        kwargs = {k: v for k, v in data.items() if k not in ("times", "machines")}
        # A version-absent envelope is a v1 client: plain P || Cmax.  The
        # v1 restrictions (no problem/speeds) are enforced in
        # __post_init__ against the declared version.
        kwargs.setdefault("protocol", 1)
        return cls(times=tuple(times), machines=int(machines), **kwargs)

    @classmethod
    def from_json(cls, line: str) -> "SolveRequest":
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"malformed request JSON: {exc}") from None
        return cls.from_dict(data)


@dataclass(frozen=True)
class SolveResult:
    """Outcome of one request (also the unit of the response stream).

    ``status`` is ``"ok"`` (schedule present, possibly ``degraded``),
    ``"rejected"`` (load shed — retry after ``retry_after`` seconds), or
    ``"error"`` (bad request / solver failure; see ``error``).

    ``guarantee`` is the a-priori approximation factor of the engine that
    actually produced the schedule: ``1 + eps`` for the PTAS engines,
    Graham's ``4/3 - 1/(3m)`` when the result is an LPT degradation, and
    ``1.0`` for exact engines.  For ``q_cmax`` requests the degradation
    bound is the speed-aware
    :func:`~repro.algorithms.related.q_lpt_worst_case_ratio` and
    ``makespan`` is a float (maximum machine *completion time*, which
    is fractional under speeds) rather than an integer load.
    """

    request_id: str = ""
    status: str = STATUS_OK
    engine: str = ""
    makespan: int | float | None = None
    assignment: tuple[tuple[int, ...], ...] | None = None
    guarantee: float | None = None
    degraded: bool = False
    cached: bool = False
    elapsed: float = 0.0
    retry_after: float | None = None
    error: str | None = None

    def __post_init__(self) -> None:
        if self.assignment is not None:
            object.__setattr__(
                self,
                "assignment",
                tuple(tuple(int(j) for j in grp) for grp in self.assignment),
            )

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def schedule(self, instance: Instance | QInstance) -> Schedule | QSchedule:
        """Reconstruct the validated schedule for *instance* —
        :class:`Schedule` or :class:`QSchedule` by instance type."""
        if self.assignment is None:
            raise ValueError(f"result has no assignment (status={self.status!r})")
        if isinstance(instance, QInstance):
            return QSchedule(instance, self.assignment)
        return Schedule(instance, self.assignment)

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe dict form (assignment as nested lists)."""
        d = asdict(self)
        if self.assignment is not None:
            d["assignment"] = [list(grp) for grp in self.assignment]
        return d

    def to_json(self) -> str:
        """One protocol line (compact JSON, no newline)."""
        return json.dumps(self.to_dict(), separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: dict) -> "SolveResult":
        """Strictly parse a decoded JSON object into a result."""
        if not isinstance(data, dict):
            raise ValueError(f"result must be a JSON object, got {type(data).__name__}")
        known = {f for f in cls.__dataclass_fields__}
        extra = set(data) - known
        if extra:
            raise ValueError(f"unknown result field(s): {sorted(extra)}")
        kwargs = dict(data)
        if kwargs.get("assignment") is not None:
            kwargs["assignment"] = tuple(tuple(g) for g in kwargs["assignment"])
        return cls(**kwargs)

    @classmethod
    def from_json(cls, line: str) -> "SolveResult":
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"malformed result JSON: {exc}") from None
        return cls.from_dict(data)

    def with_request_id(self, request_id: str) -> "SolveResult":
        """A copy carrying *request_id* (cache hits echo the caller's)."""
        return replace(self, request_id=request_id)


#: Valid actions of the ``op=stream`` session protocol.
STREAM_ACTIONS = ("open_session", "add_jobs", "remove_jobs", "snapshot", "close")


@dataclass(frozen=True)
class StreamRequest:
    """One event of a tenant's live-schedule session (``op=stream``).

    Sessions are stateful: ``open_session`` creates (or restores) the
    tenant's :class:`repro.online.live.LiveSchedule`; ``add_jobs`` /
    ``remove_jobs`` mutate it through the incremental-repair + drift
    policy; ``snapshot`` returns (and durably persists) its full state;
    ``close`` persists and drops it.  Events of one tenant are applied
    in arrival order — the server handles stream lines inline per
    connection, and the pooled service pins a tenant to one worker's
    serial lane (``docs/online.md``).

    ``jobs`` carries ``(job_id, processing_time)`` pairs for
    ``add_jobs``; ``job_ids`` names the departures for ``remove_jobs``.
    ``machines`` / ``eps`` / ``engine`` / ``dp_engine`` /
    ``drift_threshold`` are session parameters, read at
    ``open_session`` and ignored afterwards (``drift_threshold=None``
    means the Della Croce–Scatamacchia LPT bound,
    :func:`repro.algorithms.lpt.dcs_lpt_bound`).

    ``problem`` follows the versioned-envelope rules of
    :class:`SolveRequest` (absent ``protocol`` = v1 = ``p_cmax``).
    Live sessions currently support ``p_cmax`` only; the session layer
    rejects other variants with an error event naming the supported
    set.
    """

    action: str
    tenant: str
    machines: int = 0
    problem: str = P_CMAX
    protocol: int = PROTOCOL_VERSION
    eps: float = 0.2
    engine: str = "ptas"
    dp_engine: str = "dominance"
    drift_threshold: float | None = None
    jobs: tuple[tuple[str, int], ...] = ()
    job_ids: tuple[str, ...] = ()
    persist: bool = True
    request_id: str = ""

    def __post_init__(self) -> None:
        if self.action not in STREAM_ACTIONS:
            raise ValueError(
                f"unknown stream action {self.action!r}; valid: {list(STREAM_ACTIONS)}"
            )
        object.__setattr__(self, "problem", canonical_problem_name(self.problem))
        object.__setattr__(self, "protocol", _check_protocol(self.protocol))
        if self.protocol < 2 and self.problem != P_CMAX:
            raise ValueError(
                "field 'problem' requires protocol version 2 "
                f"(request declared protocol {self.protocol})"
            )
        if not self.tenant or not isinstance(self.tenant, str):
            raise ValueError("tenant must be a non-empty string")
        if isinstance(self.machines, float) and not self.machines.is_integer():
            raise ValueError(
                f"machines must be an integer, got {self.machines!r}"
            )
        try:
            object.__setattr__(self, "machines", int(self.machines))
        except (TypeError, ValueError):
            raise ValueError(
                f"machines must be an integer, got {self.machines!r}"
            ) from None
        try:
            object.__setattr__(self, "eps", float(self.eps))
        except (TypeError, ValueError):
            raise ValueError(f"eps must be a number, got {self.eps!r}") from None
        if self.drift_threshold is not None:
            try:
                object.__setattr__(
                    self, "drift_threshold", float(self.drift_threshold)
                )
            except (TypeError, ValueError):
                raise ValueError(
                    f"drift_threshold must be a number, got "
                    f"{self.drift_threshold!r}"
                ) from None
        try:
            object.__setattr__(
                self,
                "jobs",
                tuple((str(j), int(t)) for j, t in self.jobs),
            )
        except (TypeError, ValueError):
            raise ValueError(
                "jobs must be [job_id, integer time] pairs"
            ) from None
        object.__setattr__(self, "job_ids", tuple(str(j) for j in self.job_ids))
        for job_id, t in self.jobs:
            if t < 1:
                raise ValueError(
                    f"job {job_id!r}: processing time must be >= 1, got {t}"
                )
        if self.action == "open_session" and self.machines < 1:
            raise ValueError(
                f"open_session needs machines >= 1, got {self.machines}"
            )
        if self.eps <= 0:
            raise ValueError(f"eps must be positive, got {self.eps}")
        if self.drift_threshold is not None and self.drift_threshold < 1.0:
            raise ValueError(
                f"drift_threshold must be >= 1, got {self.drift_threshold}"
            )

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe dict form, tagged ``op=stream``."""
        d = asdict(self)
        d["op"] = "stream"
        d["jobs"] = [[j, t] for j, t in self.jobs]
        d["job_ids"] = list(self.job_ids)
        return d

    def to_json(self) -> str:
        """One protocol line (compact JSON, no newline)."""
        return json.dumps(self.to_dict(), separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: dict) -> "StreamRequest":
        """Strictly parse a decoded JSON object into a stream request."""
        if not isinstance(data, dict):
            raise ValueError(
                f"stream request must be a JSON object, got {type(data).__name__}"
            )
        payload = dict(data)
        op = payload.pop("op", "stream")
        if op != "stream":
            raise ValueError(f"stream request has op={op!r}, expected 'stream'")
        try:
            action = payload.pop("action")
            tenant = payload.pop("tenant")
        except KeyError as exc:
            raise ValueError(
                f"stream request is missing required field {exc.args[0]!r}"
            ) from None
        known = {f for f in cls.__dataclass_fields__}
        extra = set(payload) - known
        if extra:
            raise ValueError(f"unknown stream request field(s): {sorted(extra)}")
        jobs = payload.pop("jobs", ())
        if not all(
            isinstance(pair, (list, tuple)) and len(pair) == 2 for pair in jobs
        ):
            raise ValueError("jobs must be a list of [job_id, time] pairs")
        payload.setdefault("protocol", 1)
        return cls(
            action=str(action),
            tenant=str(tenant),
            jobs=tuple((j, t) for j, t in jobs),
            **payload,
        )

    @classmethod
    def from_json(cls, line: str) -> "StreamRequest":
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"malformed stream request JSON: {exc}") from None
        return cls.from_dict(data)


@dataclass(frozen=True)
class StreamResult:
    """Outcome of one stream event, echoed on the same connection.

    ``makespan`` / ``ratio`` / ``num_jobs`` describe the live schedule
    *after* the event; ``resolves`` / ``repairs`` are the session's
    cumulative counters (a jump in ``resolves`` means this event tripped
    the drift policy into a full PTAS re-solve).  ``snapshot`` is only
    populated for the ``snapshot`` action and carries the full durable
    session state (:meth:`repro.online.live.LiveSchedule.snapshot`).
    """

    request_id: str = ""
    tenant: str = ""
    action: str = ""
    status: str = STATUS_OK
    makespan: int | None = None
    ratio: float | None = None
    resolves: int = 0
    repairs: int = 0
    num_jobs: int = 0
    restored: bool = False
    snapshot: dict | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe dict form, tagged ``op=stream``."""
        d = asdict(self)
        d["op"] = "stream"
        return d

    def to_json(self) -> str:
        """One protocol line (compact JSON, no newline)."""
        return json.dumps(self.to_dict(), separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: dict) -> "StreamResult":
        if not isinstance(data, dict):
            raise ValueError(
                f"stream result must be a JSON object, got {type(data).__name__}"
            )
        payload = dict(data)
        payload.pop("op", None)
        known = {f for f in cls.__dataclass_fields__}
        extra = set(payload) - known
        if extra:
            raise ValueError(f"unknown stream result field(s): {sorted(extra)}")
        return cls(**payload)

    @classmethod
    def from_json(cls, line: str) -> "StreamResult":
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"malformed stream result JSON: {exc}") from None
        return cls.from_dict(data)


def deadline_checker(
    deadline_at: float, clock: Callable[[], float] = time.monotonic
) -> Callable[[], None]:
    """A ``check_deadline`` callback raising :class:`DeadlineExceeded`
    once ``clock()`` passes *deadline_at* (a :func:`time.monotonic`
    instant).  Threaded into the PTAS bisection loops so a solve aborts
    between probes."""

    def check() -> None:
        if clock() > deadline_at:
            raise DeadlineExceeded(f"deadline passed at t={deadline_at:.6f}")

    return check
