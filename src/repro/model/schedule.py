"""The :class:`Schedule` type — an assignment of jobs to machines.

A schedule for ``P || Cmax`` is a partition of the job indices
``0 .. n-1`` into ``m`` (possibly empty) groups, one per machine.  Because
jobs are released at time zero and machines process one job at a time, the
completion time of a machine equals the sum of the processing times
assigned to it, and the makespan is the maximum machine load.  The order
of jobs within a machine is therefore irrelevant to the objective; we keep
the assignment order anyway because it is useful for reproducing and
debugging algorithm behaviour (e.g. the order in which LPT placed jobs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.model.instance import Instance


def makespan_of_loads(loads: Iterable[int]) -> int:
    """Return ``max(loads)`` — the makespan given per-machine loads."""
    return max(loads)


@dataclass(frozen=True)
class Schedule:
    """An assignment of jobs to machines for a specific :class:`Instance`.

    Parameters
    ----------
    instance:
        The instance this schedule solves.
    assignment:
        ``assignment[i]`` is the tuple of job indices executed by machine
        ``i``.  The tuples must form a partition of ``range(n)`` — this is
        checked eagerly.

    Examples
    --------
    >>> inst = Instance([7, 3, 5, 5], num_machines=2)
    >>> sched = Schedule(inst, [(0, 1), (2, 3)])
    >>> sched.machine_loads
    (10, 10)
    >>> sched.makespan
    10
    """

    instance: Instance
    assignment: tuple[tuple[int, ...], ...]

    def __init__(self, instance: Instance, assignment: Sequence[Sequence[int]]):
        groups = tuple(tuple(int(j) for j in grp) for grp in assignment)
        if len(groups) != instance.num_machines:
            raise ValueError(
                f"schedule has {len(groups)} machine groups but the instance "
                f"has {instance.num_machines} machines"
            )
        seen: set[int] = set()
        count = 0
        for grp in groups:
            for j in grp:
                if not 0 <= j < instance.num_jobs:
                    raise ValueError(f"job index {j} out of range")
                if j in seen:
                    raise ValueError(f"job {j} assigned to more than one machine")
                seen.add(j)
                count += 1
        if count != instance.num_jobs:
            missing = sorted(set(range(instance.num_jobs)) - seen)
            raise ValueError(f"jobs not assigned to any machine: {missing}")
        object.__setattr__(self, "instance", instance)
        object.__setattr__(self, "assignment", groups)

    # ------------------------------------------------------------------
    # Objective
    # ------------------------------------------------------------------
    @property
    def machine_loads(self) -> tuple[int, ...]:
        """Per-machine completion times (sum of assigned processing times)."""
        t = self.instance.processing_times
        return tuple(sum(t[j] for j in grp) for grp in self.assignment)

    @property
    def makespan(self) -> int:
        """The maximum machine completion time ``Cmax``."""
        return max(self.machine_loads)

    # ------------------------------------------------------------------
    # Validation and inspection
    # ------------------------------------------------------------------
    def is_valid(self) -> bool:
        """True iff the assignment partitions the jobs (always holds for a
        constructed ``Schedule``; provided for defensive use in harnesses)."""
        seen: set[int] = set()
        for grp in self.assignment:
            for j in grp:
                if j in seen or not 0 <= j < self.instance.num_jobs:
                    return False
                seen.add(j)
        return len(seen) == self.instance.num_jobs

    def job_machine(self) -> dict[int, int]:
        """Map from job index to the machine that runs it."""
        where: dict[int, int] = {}
        for i, grp in enumerate(self.assignment):
            for j in grp:
                where[j] = i
        return where

    def completion_times(self) -> dict[int, int]:
        """Completion time of each job when machines run their job lists in
        assignment order back-to-back starting at time zero."""
        t = self.instance.processing_times
        done: dict[int, int] = {}
        for grp in self.assignment:
            clock = 0
            for j in grp:
                clock += t[j]
                done[j] = clock
        return done

    def imbalance(self) -> float:
        """Makespan divided by the average machine load — 1.0 is perfectly
        balanced.  Useful when comparing schedule quality beyond makespan."""
        return self.makespan / self.instance.average_load

    def canonical(self) -> tuple[tuple[int, ...], ...]:
        """Machine groups with jobs sorted, machines sorted — equality on
        this form ignores machine numbering and intra-machine job order."""
        return tuple(sorted(tuple(sorted(grp)) for grp in self.assignment))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Schedule(makespan={self.makespan}, loads={self.machine_loads})"


def schedule_from_machine_map(instance: Instance, job_to_machine: dict[int, int]) -> Schedule:
    """Inverse of :meth:`Schedule.job_machine` — build a schedule from a
    ``{job: machine}`` map."""
    groups: list[list[int]] = [[] for _ in range(instance.num_machines)]
    for job, machine in sorted(job_to_machine.items()):
        if not 0 <= machine < instance.num_machines:
            raise ValueError(f"machine index {machine} out of range")
        groups[machine].append(job)
    return Schedule(instance, groups)
