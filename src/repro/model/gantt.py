"""Plain-text Gantt rendering of schedules.

Terminal-friendly visualization used by the CLI's ``--gantt`` flag and
the examples: one row per machine, jobs drawn to scale as labelled
segments, the makespan marked.  Deliberately dependency-free (no
matplotlib on the cluster login node).

Example output::

    machine 0 |0000000333|          load 10
    machine 1 |111122    |          load  6
              +----------+ makespan 10
"""

from __future__ import annotations

from repro.model.schedule import Schedule

#: Cycle of glyphs used to distinguish adjacent jobs on one machine.
_GLYPHS = "0123456789abcdefghijklmnopqrstuvwxyz"


def render_gantt(schedule: Schedule, width: int = 60) -> str:
    """Render the schedule as an ASCII Gantt chart.

    ``width`` is the number of character cells representing the
    makespan; each job occupies cells proportional to its processing
    time (at least one cell, so tiny jobs stay visible — the chart is
    qualitative, not a measuring instrument).
    """
    if width < 10:
        raise ValueError("width must be at least 10 cells")
    makespan = schedule.makespan
    t = schedule.instance.processing_times
    scale = width / makespan if makespan else 1.0
    lines: list[str] = []
    loads = schedule.machine_loads
    load_digits = len(str(max(loads)))
    for i, grp in enumerate(schedule.assignment):
        cells: list[str] = []
        for j in grp:
            span = max(1, round(t[j] * scale))
            cells.append(_GLYPHS[j % len(_GLYPHS)] * span)
        bar = "".join(cells)[: width + 10]
        lines.append(
            f"machine {i:3d} |{bar:<{width}}| load {loads[i]:>{load_digits}}"
        )
    lines.append(" " * 12 + "+" + "-" * width + f"+ makespan {makespan}")
    return "\n".join(lines)


def render_load_histogram(schedule: Schedule, width: int = 40) -> str:
    """Horizontal bar chart of machine loads — the imbalance at a glance."""
    loads = schedule.machine_loads
    peak = max(loads)
    lines = []
    load_digits = len(str(peak))
    for i, load in enumerate(loads):
        bar = "#" * (round(load / peak * width) if peak else 0)
        lines.append(f"machine {i:3d} {load:>{load_digits}} |{bar}")
    return "\n".join(lines)
