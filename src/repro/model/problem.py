"""First-class problem variants: the :class:`ProblemModel` axis.

Every layer of the stack (registry, wire types, cache/store keys, CLI,
workloads) now dispatches on a *problem name* instead of assuming the
paper's ``P || Cmax``.  This module is the single source of truth for
what problems exist and how to build, verify, and baseline-solve their
instances:

* ``p_cmax`` — identical machines (:class:`~repro.model.instance.Instance`),
  the paper's problem.
* ``q_cmax`` — uniformly related machines
  (:class:`~repro.model.qinstance.QInstance`), the proving variant.

The model keeps algorithm imports lazy so ``repro.model`` stays free of
cycles with :mod:`repro.algorithms`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.model.instance import Instance
from repro.model.qinstance import QInstance, QSchedule
from repro.model.schedule import Schedule

P_CMAX = "p_cmax"
Q_CMAX = "q_cmax"

_ALIASES = {
    "p": P_CMAX,
    "pcmax": P_CMAX,
    "p||cmax": P_CMAX,
    "identical": P_CMAX,
    "q": Q_CMAX,
    "qcmax": Q_CMAX,
    "q||cmax": Q_CMAX,
    "uniform": Q_CMAX,
    "related": Q_CMAX,
}


class UnknownProblemError(ValueError):
    """Raised for a problem name outside the registry; the message lists
    the valid names, mirroring ``UnknownEngineError``."""

    def __init__(self, name: str):
        valid = ", ".join(available_problems())
        super().__init__(f"unknown problem {name!r}; valid problems: {valid}")
        self.name = name


@dataclass(frozen=True)
class ProblemModel:
    """One problem variant: identity, instance construction, schedule
    verification, and the degrade-path baseline used when deadlines or
    engine failures force a cheap answer.

    ``baseline`` returns ``(schedule, guarantee)`` so callers never need
    to know which concrete algorithm backs the fallback.
    """

    name: str
    label: str
    description: str
    needs_speeds: bool
    instance_type: type
    schedule_type: type
    _build: Callable[[Sequence[int], int, Sequence[int]], Any]
    _baseline: Callable[[Any], tuple[Any, float]]

    def build_instance(
        self,
        times: Sequence[int],
        machines: int,
        speeds: Sequence[int] = (),
    ) -> Any:
        """Construct a validated instance of this problem."""
        return self._build(times, machines, speeds)

    def baseline(self, instance: Any) -> tuple[Any, float]:
        """Cheap deterministic fallback solve: ``(schedule, guarantee)``."""
        return self._baseline(instance)

    def verify(self, schedule: Any, instance: Any = None):
        """Semantic verification, dispatched by problem (see
        :func:`repro.model.verify.verify_schedule`)."""
        from repro.model.verify import verify_schedule

        return verify_schedule(schedule, instance)


def _build_p(times: Sequence[int], machines: int, speeds: Sequence[int]) -> Instance:
    if speeds:
        raise ValueError(
            "problem 'p_cmax' does not take machine speeds; "
            "use problem 'q_cmax' for uniformly related machines"
        )
    return Instance(times, machines)


def _build_q(times: Sequence[int], machines: int, speeds: Sequence[int]) -> QInstance:
    if not speeds:
        raise ValueError("problem 'q_cmax' requires a machine speed vector")
    if machines and machines != len(speeds):
        raise ValueError(
            f"machines={machines} disagrees with {len(speeds)} speeds"
        )
    return QInstance(times, speeds)


def _baseline_p(instance: Instance) -> tuple[Schedule, float]:
    from repro.algorithms.lpt import lpt, lpt_worst_case_ratio

    return lpt(instance), lpt_worst_case_ratio(instance.num_machines)


def _baseline_q(instance: QInstance) -> tuple[QSchedule, float]:
    from repro.algorithms.related import q_lpt, q_lpt_worst_case_ratio

    return q_lpt(instance), q_lpt_worst_case_ratio(instance.speeds)


_PROBLEMS: dict[str, ProblemModel] = {
    P_CMAX: ProblemModel(
        name=P_CMAX,
        label="P || Cmax",
        description="makespan minimization on identical parallel machines",
        needs_speeds=False,
        instance_type=Instance,
        schedule_type=Schedule,
        _build=_build_p,
        _baseline=_baseline_p,
    ),
    Q_CMAX: ProblemModel(
        name=Q_CMAX,
        label="Q || Cmax",
        description="makespan minimization on uniformly related machines",
        needs_speeds=True,
        instance_type=QInstance,
        schedule_type=QSchedule,
        _build=_build_q,
        _baseline=_baseline_q,
    ),
}


def available_problems() -> list[str]:
    """Registered problem names, deterministic order (``p_cmax`` first)."""
    return list(_PROBLEMS)


def canonical_problem_name(name: str) -> str:
    """Normalize a user-supplied problem name (case, dashes, common
    aliases like ``Q||Cmax``); raise :class:`UnknownProblemError` for
    anything unrecognized.

    >>> canonical_problem_name("Q-Cmax")
    'q_cmax'
    >>> canonical_problem_name("p_cmax")
    'p_cmax'
    """
    if not isinstance(name, str):
        raise UnknownProblemError(str(name))
    norm = name.strip().lower().replace("-", "_")
    if norm in _PROBLEMS:
        return norm
    collapsed = norm.replace("_", "")
    if collapsed in _ALIASES:
        return _ALIASES[collapsed]
    raise UnknownProblemError(name)


def get_problem(name: str) -> ProblemModel:
    """Look up a :class:`ProblemModel` by (normalized) name."""
    return _PROBLEMS[canonical_problem_name(name)]


def problem_of_instance(instance: Any) -> str:
    """Infer the problem name from a concrete instance object."""
    if isinstance(instance, QInstance):
        return Q_CMAX
    if isinstance(instance, Instance):
        return P_CMAX
    raise TypeError(
        f"expected Instance or QInstance, got {type(instance).__name__}"
    )
