"""Problem model for ``P || Cmax``: instances and schedules.

This subpackage provides the two fundamental data structures shared by
every algorithm in :mod:`repro`:

* :class:`~repro.model.instance.Instance` — an immutable description of a
  scheduling problem (job processing times + number of machines), together
  with convenience statistics (total work, longest job, trivial bounds).
* :class:`~repro.model.schedule.Schedule` — an assignment of jobs to
  machines, with validation and makespan computation.

Both types are deliberately plain (frozen dataclasses over tuples) so that
they can be hashed, pickled across process boundaries, and compared for
equality in tests.
"""

from repro.model.instance import Instance
from repro.model.schedule import Schedule, makespan_of_loads

__all__ = ["Instance", "Schedule", "makespan_of_loads"]
