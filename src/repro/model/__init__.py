"""Problem models: instances, schedules, and the problem-variant axis.

This subpackage provides the fundamental data structures shared by
every algorithm in :mod:`repro`, for each supported problem variant:

* :class:`~repro.model.instance.Instance` /
  :class:`~repro.model.schedule.Schedule` — the paper's ``P || Cmax``
  (identical machines).
* :class:`~repro.model.qinstance.QInstance` /
  :class:`~repro.model.qinstance.QSchedule` — ``Q || Cmax``
  (uniformly related machines with integer speeds).
* :mod:`repro.model.problem` — the :class:`~repro.model.problem.ProblemModel`
  registry that names the variants (``p_cmax``, ``q_cmax``) and
  dispatches construction, verification, and baseline solves.

All types are deliberately plain (frozen dataclasses over tuples) so
they can be hashed, pickled across process boundaries, and compared for
equality in tests.
"""

from repro.model.instance import Instance
from repro.model.problem import (
    P_CMAX,
    Q_CMAX,
    ProblemModel,
    UnknownProblemError,
    available_problems,
    canonical_problem_name,
    get_problem,
    problem_of_instance,
)
from repro.model.qinstance import QInstance, QSchedule
from repro.model.schedule import Schedule, makespan_of_loads
from repro.model.verify import verify_qschedule, verify_schedule

__all__ = [
    "Instance",
    "Schedule",
    "QInstance",
    "QSchedule",
    "makespan_of_loads",
    "P_CMAX",
    "Q_CMAX",
    "ProblemModel",
    "UnknownProblemError",
    "available_problems",
    "canonical_problem_name",
    "get_problem",
    "problem_of_instance",
    "verify_schedule",
    "verify_qschedule",
]
