"""The :class:`QInstance` / :class:`QSchedule` types — ``Q || Cmax``
on uniformly related machines.

The uniformly related (uniform) machine model generalizes ``P || Cmax``:
machine ``i`` runs at integer speed ``s_i >= 1``, so a job with
processing requirement ``t`` occupies it for ``t / s_i`` time units.
With all speeds equal to one the model degenerates to identical
machines, and every quantity below collapses to its
:class:`~repro.model.instance.Instance` counterpart.

Both types mirror the ``P`` pair deliberately: eager validation in
``__init__``, frozen dataclasses over tuples (hashable, picklable),
cached aggregates.  Loads stay exact integers (work units); completion
times are exact :class:`fractions.Fraction` internally and surface as
floats, so makespans are deterministic across platforms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterable, Sequence

from repro.model.instance import Instance, _as_int


@dataclass(frozen=True)
class QInstance:
    """An immutable ``Q || Cmax`` problem instance.

    Parameters
    ----------
    processing_times:
        Sequence of positive integer processing requirements, one per
        job (work units, speed-independent).
    speeds:
        Sequence of positive integer machine speeds, one per machine;
        machine ``i`` processes ``speeds[i]`` work units per time unit.

    Examples
    --------
    >>> inst = QInstance([6, 4, 2], speeds=[2, 1])
    >>> inst.num_machines
    2
    >>> inst.total_work, inst.total_speed
    (12, 3)
    >>> inst.is_identical
    False
    >>> QInstance([6, 4], speeds=[3, 3]).is_identical
    True
    """

    processing_times: tuple[int, ...]
    speeds: tuple[int, ...]
    # Cached aggregates, filled in __post_init__.
    total_work: int = field(init=False, repr=False, compare=False)
    max_time: int = field(init=False, repr=False, compare=False)
    total_speed: int = field(init=False, repr=False, compare=False)
    max_speed: int = field(init=False, repr=False, compare=False)

    def __init__(self, processing_times: Iterable[int], speeds: Iterable[int]):
        times = tuple(_as_int(t, "processing time") for t in processing_times)
        if not times:
            raise ValueError("an instance must contain at least one job")
        for t in times:
            if t <= 0:
                raise ValueError(f"processing times must be positive, got {t}")
        spd = tuple(_as_int(s, "machine speed") for s in speeds)
        if not spd:
            raise ValueError("an instance must contain at least one machine")
        for s in spd:
            if s <= 0:
                raise ValueError(f"machine speeds must be positive, got {s}")
        object.__setattr__(self, "processing_times", times)
        object.__setattr__(self, "speeds", spd)
        object.__setattr__(self, "total_work", sum(times))
        object.__setattr__(self, "max_time", max(times))
        object.__setattr__(self, "total_speed", sum(spd))
        object.__setattr__(self, "max_speed", max(spd))

    # ------------------------------------------------------------------
    # Aggregate statistics
    # ------------------------------------------------------------------
    @property
    def num_jobs(self) -> int:
        """Number of jobs ``n``."""
        return len(self.processing_times)

    @property
    def num_machines(self) -> int:
        """Number of machines ``m`` (one speed per machine)."""
        return len(self.speeds)

    @property
    def is_identical(self) -> bool:
        """True iff all speeds are equal — the ``P || Cmax`` special case."""
        return min(self.speeds) == self.max_speed

    def trivial_lower_bound(self) -> float:
        """``max(sum t / sum s, max t / max s)`` — the speed-aware analogue
        of Eq. (1): no schedule beats the perfectly balanced fractional
        load, and the longest job needs at least ``t_max / s_max`` time
        even on the fastest machine."""
        return float(
            max(
                Fraction(self.total_work, self.total_speed),
                Fraction(self.max_time, self.max_speed),
            )
        )

    def trivial_upper_bound(self) -> float:
        """``sum t / max s`` — running every job back-to-back on the
        fastest machine is always feasible, so the optimum is below it."""
        return float(Fraction(self.total_work, self.max_speed))

    # ------------------------------------------------------------------
    # Convenience constructors / transforms
    # ------------------------------------------------------------------
    @classmethod
    def from_identical(cls, instance: Instance, speed: int = 1) -> "QInstance":
        """Lift a ``P`` instance into the uniform model (all speeds equal).

        >>> QInstance.from_identical(Instance([3, 5], 2)).speeds
        (1, 1)
        """
        return cls(instance.processing_times, (speed,) * instance.num_machines)

    def to_identical(self) -> Instance:
        """Project back to ``P || Cmax``.  Only valid when
        :attr:`is_identical` holds (speeds carry information otherwise)."""
        if not self.is_identical:
            raise ValueError(
                f"speeds {self.speeds} are not all equal; "
                "this Q instance has no identical-machine projection"
            )
        return Instance(self.processing_times, self.num_machines)

    def sorted_jobs_desc(self) -> list[int]:
        """Job indices by non-increasing processing requirement (ties by
        ascending index) — the deterministic order shared with
        :meth:`Instance.sorted_jobs_desc`."""
        return sorted(
            range(self.num_jobs), key=lambda j: (-self.processing_times[j], j)
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QInstance(n={self.num_jobs}, m={self.num_machines}, "
            f"total={self.total_work}, max={self.max_time}, "
            f"speeds={self.speeds})"
        )


@dataclass(frozen=True)
class QSchedule:
    """An assignment of jobs to uniformly related machines.

    Structurally identical to :class:`~repro.model.schedule.Schedule`
    (a validated partition of job indices into one group per machine);
    the objective differs: machine ``i`` finishes at ``load_i / s_i``,
    and the makespan is the maximum *completion time*, not the maximum
    load.

    >>> inst = QInstance([6, 4, 2], speeds=[2, 1])
    >>> sched = QSchedule(inst, [(0, 2), (1,)])
    >>> sched.machine_loads
    (8, 4)
    >>> sched.completion_times
    (4.0, 4.0)
    >>> sched.makespan
    4.0
    """

    instance: QInstance
    assignment: tuple[tuple[int, ...], ...]

    def __init__(self, instance: QInstance, assignment: Sequence[Sequence[int]]):
        groups = tuple(tuple(int(j) for j in grp) for grp in assignment)
        if len(groups) != instance.num_machines:
            raise ValueError(
                f"schedule has {len(groups)} machine groups but the instance "
                f"has {instance.num_machines} machines"
            )
        seen: set[int] = set()
        count = 0
        for grp in groups:
            for j in grp:
                if not 0 <= j < instance.num_jobs:
                    raise ValueError(f"job index {j} out of range")
                if j in seen:
                    raise ValueError(f"job {j} assigned to more than one machine")
                seen.add(j)
                count += 1
        if count != instance.num_jobs:
            missing = sorted(set(range(instance.num_jobs)) - seen)
            raise ValueError(f"jobs not assigned to any machine: {missing}")
        object.__setattr__(self, "instance", instance)
        object.__setattr__(self, "assignment", groups)

    # ------------------------------------------------------------------
    # Objective
    # ------------------------------------------------------------------
    @property
    def machine_loads(self) -> tuple[int, ...]:
        """Per-machine work (sum of assigned processing requirements)."""
        t = self.instance.processing_times
        return tuple(sum(t[j] for j in grp) for grp in self.assignment)

    def exact_completion_times(self) -> tuple[Fraction, ...]:
        """Per-machine completion times as exact fractions
        (``load_i / s_i``)."""
        return tuple(
            Fraction(load, s)
            for load, s in zip(self.machine_loads, self.instance.speeds)
        )

    @property
    def completion_times(self) -> tuple[float, ...]:
        """Per-machine completion times (``load_i / s_i``) as floats."""
        return tuple(float(c) for c in self.exact_completion_times())

    @property
    def makespan(self) -> float:
        """The maximum machine completion time ``Cmax`` (speed-scaled)."""
        return float(max(self.exact_completion_times()))

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def is_valid(self) -> bool:
        """True iff the assignment partitions the jobs (defensive; always
        holds for a constructed ``QSchedule``)."""
        seen: set[int] = set()
        for grp in self.assignment:
            for j in grp:
                if j in seen or not 0 <= j < self.instance.num_jobs:
                    return False
                seen.add(j)
        return len(seen) == self.instance.num_jobs

    def job_machine(self) -> dict[int, int]:
        """Map from job index to the machine that runs it."""
        where: dict[int, int] = {}
        for i, grp in enumerate(self.assignment):
            for j in grp:
                where[j] = i
        return where

    def canonical(self) -> tuple[tuple[int, ...], ...]:
        """Machine groups with jobs sorted (machine order kept — unlike
        the ``P`` form, machines are distinguishable by speed)."""
        return tuple(tuple(sorted(grp)) for grp in self.assignment)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QSchedule(makespan={self.makespan}, loads={self.machine_loads}, "
            f"speeds={self.instance.speeds})"
        )
