"""Rich verification of schedules and PTAS results.

:class:`~repro.model.schedule.Schedule` already refuses structurally
invalid assignments at construction; this module adds the *semantic*
checks a harness or a downstream consumer wants as explicit, reportable
diagnostics rather than exceptions:

* :func:`verify_schedule` — partition, load arithmetic, makespan
  consistency, per-machine breakdown; returns a
  :class:`VerificationReport` listing every violation found (empty =
  clean).
* :func:`verify_ptas_result` — the PTAS-specific certificate: the final
  target is within the Eq. 1–2 bounds, the makespan respects the
  ``(1 + eps)``-vs-lower-bound envelope, the bisection trace is monotone,
  and the schedule verifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.bounds import makespan_bounds
from repro.core.ptas import PTASResult
from repro.model.instance import Instance
from repro.model.qinstance import QInstance, QSchedule
from repro.model.schedule import Schedule


@dataclass
class VerificationReport:
    """Outcome of a verification pass: a list of human-readable
    violations.  Truthy iff clean."""

    subject: str
    violations: list[str] = field(default_factory=list)

    def fail(self, message: str) -> None:
        """Record one violation."""
        self.violations.append(message)

    @property
    def ok(self) -> bool:
        return not self.violations

    def __bool__(self) -> bool:
        return self.ok

    def raise_if_failed(self) -> None:
        """Raise ``AssertionError`` listing the violations, if any."""
        if self.violations:
            details = "\n  - ".join(self.violations)
            raise AssertionError(
                f"verification of {self.subject} failed:\n  - {details}"
            )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.ok:
            return f"{self.subject}: OK"
        return f"{self.subject}: {len(self.violations)} violation(s)"


def verify_schedule(
    schedule: Schedule | QSchedule,
    instance: Instance | QInstance | None = None,
) -> VerificationReport:
    """Full semantic check of a schedule against its (or a given) instance.

    Dispatches on the schedule type: :class:`QSchedule` objects are
    routed to :func:`verify_qschedule` (speed-aware completion-time
    arithmetic), everything else takes the identical-machine path.
    """
    if isinstance(schedule, QSchedule):
        if instance is not None and not isinstance(instance, QInstance):
            report = VerificationReport("schedule")
            report.fail("Q schedule verified against a non-Q instance")
            return report
        return verify_qschedule(schedule, instance)
    report = VerificationReport("schedule")
    inst = instance if instance is not None else schedule.instance
    if instance is not None and instance != schedule.instance:
        report.fail("schedule was built for a different instance")
        return report
    n = inst.num_jobs
    seen: dict[int, int] = {}
    for machine, grp in enumerate(schedule.assignment):
        for j in grp:
            if not 0 <= j < n:
                report.fail(f"job index {j} out of range on machine {machine}")
            elif j in seen:
                report.fail(
                    f"job {j} on machines {seen[j]} and {machine} simultaneously"
                )
            else:
                seen[j] = machine
    missing = sorted(set(range(n)) - set(seen))
    if missing:
        report.fail(f"jobs never scheduled: {missing}")
    if len(schedule.assignment) != inst.num_machines:
        report.fail(
            f"{len(schedule.assignment)} machine rows for "
            f"{inst.num_machines} machines"
        )
    loads = schedule.machine_loads
    if sum(loads) != inst.total_work:
        report.fail(
            f"loads sum to {sum(loads)}, total work is {inst.total_work}"
        )
    if loads and schedule.makespan != max(loads):
        report.fail("makespan is not the maximum machine load")
    if schedule.makespan < inst.trivial_lower_bound() and not missing:
        report.fail(
            f"makespan {schedule.makespan} beats the lower bound "
            f"{inst.trivial_lower_bound()} — impossible for a complete schedule"
        )
    return report


def verify_qschedule(
    schedule: QSchedule, instance: QInstance | None = None
) -> VerificationReport:
    """Speed-aware semantic check for uniformly related machines: the
    partition and load-arithmetic checks of :func:`verify_schedule`,
    plus completion times ``load_i / s_i`` and a makespan that must be
    their exact maximum and respect the speed-scaled lower bound."""
    report = VerificationReport("q-schedule")
    inst = instance if instance is not None else schedule.instance
    if instance is not None and instance != schedule.instance:
        report.fail("schedule was built for a different instance")
        return report
    n = inst.num_jobs
    seen: dict[int, int] = {}
    for machine, grp in enumerate(schedule.assignment):
        for j in grp:
            if not 0 <= j < n:
                report.fail(f"job index {j} out of range on machine {machine}")
            elif j in seen:
                report.fail(
                    f"job {j} on machines {seen[j]} and {machine} simultaneously"
                )
            else:
                seen[j] = machine
    missing = sorted(set(range(n)) - set(seen))
    if missing:
        report.fail(f"jobs never scheduled: {missing}")
    if len(schedule.assignment) != inst.num_machines:
        report.fail(
            f"{len(schedule.assignment)} machine rows for "
            f"{inst.num_machines} machines"
        )
    loads = schedule.machine_loads
    if sum(loads) != inst.total_work:
        report.fail(
            f"loads sum to {sum(loads)}, total work is {inst.total_work}"
        )
    completions = schedule.exact_completion_times()
    if completions and schedule.makespan != float(max(completions)):
        report.fail("makespan is not the maximum machine completion time")
    # Exact-fraction comparison against the lower bound avoids false
    # positives from float rounding of load/speed divisions.
    from fractions import Fraction

    lb = max(
        Fraction(inst.total_work, inst.total_speed),
        Fraction(inst.max_time, inst.max_speed),
    )
    if completions and max(completions) < lb and not missing:
        report.fail(
            f"makespan {schedule.makespan} beats the lower bound "
            f"{inst.trivial_lower_bound()} — impossible for a complete schedule"
        )
    return report


def verify_ptas_result(result: PTASResult) -> VerificationReport:
    """Certificate check for a (parallel) PTAS run."""
    report = VerificationReport(f"PTAS result (eps={result.eps})")
    inst = result.schedule.instance
    bounds = makespan_bounds(inst)

    inner = verify_schedule(result.schedule)
    for violation in inner.violations:
        report.fail(f"schedule: {violation}")

    if not bounds.contains(result.final_target):
        report.fail(
            f"certified target {result.final_target} outside "
            f"[{bounds.lower}, {bounds.upper}]"
        )
    # The dual-approximation envelope: the rounded target never exceeds
    # the optimum, so (1+eps) * target bounds the guarantee from below;
    # a correct run keeps the makespan within (1+eps) * max(target, LB).
    envelope = (1.0 + result.eps) * max(result.final_target, bounds.lower)
    if result.makespan > envelope + 1e-9:
        report.fail(
            f"makespan {result.makespan} exceeds the (1+eps) envelope "
            f"{envelope:.2f}"
        )
    # Bisection trace sanity: feasible probes only ever shrink the upper
    # bound; infeasible ones only raise the lower bound, and every probe
    # sits inside its interval.
    for it in result.outcome.iterations:
        if not it.lower <= it.target <= it.upper:
            report.fail(
                f"probe {it.target} outside its interval "
                f"[{it.lower}, {it.upper}]"
            )
    feasible_targets = [
        it.target for it in result.outcome.iterations if it.feasible
    ]
    if feasible_targets and min(feasible_targets) != result.final_target:
        report.fail(
            "final target is not the smallest feasible probe "
            f"({result.final_target} vs {min(feasible_targets)})"
        )
    import math

    if result.k != math.ceil(1.0 / result.eps):
        report.fail(f"k={result.k} inconsistent with eps={result.eps}")
    return report
