"""The :class:`Instance` type — an immutable ``P || Cmax`` problem instance.

An instance of the minimum-makespan scheduling problem on parallel
identical machines is fully described by

* the multiset of job processing times ``t_1, ..., t_n`` (positive
  integers, as assumed by the Hochbaum–Shmoys PTAS), and
* the number of identical machines ``m``.

The class performs eager validation and exposes the handful of aggregate
statistics (total work, longest job) that every algorithm in the library
needs, so they are computed exactly once.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence


def _as_int(value: object, what: str) -> int:
    """Coerce *value* to a plain ``int``, rejecting non-integral input.

    Numpy integer scalars are accepted (they are ``Integral``), floats are
    accepted only when they are exactly integral (e.g. ``3.0``), everything
    else raises ``TypeError``.
    """
    if isinstance(value, bool):
        raise TypeError(f"{what} must be an integer, got bool {value!r}")
    if isinstance(value, int):
        return value
    # Accept numpy integers and integral floats without importing numpy.
    try:
        as_int = int(value)  # type: ignore[arg-type]
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{what} must be an integer, got {value!r}") from exc
    if isinstance(value, float) and not value.is_integer():
        raise TypeError(f"{what} must be an integer, got float {value!r}")
    if not isinstance(value, float) and as_int != value:
        raise TypeError(f"{what} must be an integer, got {value!r}")
    return as_int


@dataclass(frozen=True)
class Instance:
    """An immutable ``P || Cmax`` problem instance.

    Parameters
    ----------
    processing_times:
        Sequence of positive integer processing times, one per job.  Job
        ``j`` (0-based) has processing time ``processing_times[j]``.
    num_machines:
        Number of identical parallel machines ``m >= 1``.

    Examples
    --------
    >>> inst = Instance([7, 3, 5, 5], num_machines=2)
    >>> inst.num_jobs
    4
    >>> inst.total_work
    20
    >>> inst.max_time
    7
    """

    processing_times: tuple[int, ...]
    num_machines: int
    # Cached aggregates, filled in __post_init__.
    total_work: int = field(init=False, repr=False, compare=False)
    max_time: int = field(init=False, repr=False, compare=False)

    def __init__(self, processing_times: Iterable[int], num_machines: int):
        times = tuple(_as_int(t, "processing time") for t in processing_times)
        if not times:
            raise ValueError("an instance must contain at least one job")
        for t in times:
            if t <= 0:
                raise ValueError(f"processing times must be positive, got {t}")
        m = _as_int(num_machines, "num_machines")
        if m < 1:
            raise ValueError(f"num_machines must be >= 1, got {m}")
        object.__setattr__(self, "processing_times", times)
        object.__setattr__(self, "num_machines", m)
        object.__setattr__(self, "total_work", sum(times))
        object.__setattr__(self, "max_time", max(times))

    # ------------------------------------------------------------------
    # Aggregate statistics
    # ------------------------------------------------------------------
    @property
    def num_jobs(self) -> int:
        """Number of jobs ``n``."""
        return len(self.processing_times)

    @property
    def average_load(self) -> float:
        """Total work divided by the number of machines (fractional)."""
        return self.total_work / self.num_machines

    def trivial_lower_bound(self) -> int:
        """Eq. (1) of the paper: ``max(ceil(sum t / m), max t)``.

        Every schedule has makespan at least the average machine load
        (rounded up, since times are integral) and at least the longest
        single job.
        """
        return max(math.ceil(self.total_work / self.num_machines), self.max_time)

    def trivial_upper_bound(self) -> int:
        """Eq. (2) of the paper: ``ceil(sum t / m) + max t``.

        List scheduling never exceeds this value (Graham's bound), so the
        optimum is certainly below it.
        """
        return math.ceil(self.total_work / self.num_machines) + self.max_time

    # ------------------------------------------------------------------
    # Convenience constructors / transforms
    # ------------------------------------------------------------------
    @classmethod
    def from_multiset(
        cls, size_counts: dict[int, int] | Sequence[tuple[int, int]], num_machines: int
    ) -> "Instance":
        """Build an instance from ``{processing_time: count}`` pairs.

        >>> Instance.from_multiset({5: 2, 9: 1}, num_machines=2).processing_times
        (5, 5, 9)
        """
        items = size_counts.items() if isinstance(size_counts, dict) else size_counts
        times: list[int] = []
        for size, count in sorted(items):
            c = _as_int(count, "count")
            if c < 0:
                raise ValueError(f"counts must be non-negative, got {c}")
            times.extend([_as_int(size, "processing time")] * c)
        return cls(times, num_machines)

    def with_machines(self, num_machines: int) -> "Instance":
        """Return a copy of this instance with a different machine count."""
        return Instance(self.processing_times, num_machines)

    def sorted_jobs_desc(self) -> list[int]:
        """Job indices sorted by non-increasing processing time.

        Ties are broken by ascending index, which keeps every consumer of
        this order (LPT, MULTIFIT, the PTAS short-job phase) deterministic.
        """
        return sorted(
            range(self.num_jobs), key=lambda j: (-self.processing_times[j], j)
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Instance(n={self.num_jobs}, m={self.num_machines}, "
            f"total={self.total_work}, max={self.max_time})"
        )
