"""Partitioning a level's subproblems across ``P`` workers.

Alg. 3 assigns the iterations of its ``parallel for`` to processors in a
round-robin fashion: iteration ``i`` goes to processor ``i mod P``, so a
processor executes at most ``ceil(q_l / P)`` subproblems of a level with
``q_l`` entries.  :func:`round_robin_partition` reproduces exactly that
assignment; :func:`block_partition` is the contiguous alternative (same
worst-case balance for uniform costs, better locality), used where chunk
shipping favours contiguity.

Both partitioners are numpy-aware: a level supplied as an ``ndarray``
(how :class:`repro.core.parallel_dp.LevelIndex` stores anti-diagonals)
is sliced into ``ndarray`` chunks — no per-element boxing into Python
ints — so the vectorized kernel consumes index arrays end-to-end.
Plain sequences keep the historical list-of-lists behaviour.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

import numpy as np

T = TypeVar("T")


def round_robin_partition(items: Sequence[T], num_workers: int) -> list[Sequence[T]]:
    """Split ``items`` into ``num_workers`` chunks, item ``i`` to worker
    ``i mod num_workers`` (Alg. 3 semantics).  Trailing workers may receive
    empty chunks when there are fewer items than workers.  ``ndarray``
    input yields ``ndarray`` (strided-view) chunks; other sequences yield
    lists.

    >>> round_robin_partition([0, 1, 2, 3, 4], 2)
    [[0, 2, 4], [1, 3]]
    """
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    if isinstance(items, np.ndarray):
        return [items[w::num_workers] for w in range(num_workers)]
    return [list(items[w::num_workers]) for w in range(num_workers)]


def block_partition(items: Sequence[T], num_workers: int) -> list[Sequence[T]]:
    """Split ``items`` into ``num_workers`` contiguous blocks whose sizes
    differ by at most one.  ``ndarray`` input yields ``ndarray`` chunks.

    >>> block_partition([0, 1, 2, 3, 4], 2)
    [[0, 1, 2], [3, 4]]
    """
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    n = len(items)
    base, extra = divmod(n, num_workers)
    out: list[Sequence[T]] = []
    start = 0
    is_array = isinstance(items, np.ndarray)
    for w in range(num_workers):
        size = base + (1 if w < extra else 0)
        chunk = items[start : start + size]
        out.append(chunk if is_array else list(chunk))
        start += size
    return out


def max_chunk_size(num_items: int, num_workers: int) -> int:
    """``ceil(q_l / P)`` — the per-processor iteration bound of Alg. 3."""
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    return -(-num_items // num_workers)
