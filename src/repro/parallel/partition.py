"""Partitioning a level's subproblems across ``P`` workers.

Alg. 3 assigns the iterations of its ``parallel for`` to processors in a
round-robin fashion: iteration ``i`` goes to processor ``i mod P``, so a
processor executes at most ``ceil(q_l / P)`` subproblems of a level with
``q_l`` entries.  :func:`round_robin_partition` reproduces exactly that
assignment; :func:`block_partition` is the contiguous alternative (same
worst-case balance for uniform costs, better locality), used where chunk
shipping favours contiguity.

Both partitioners are numpy-aware: a level supplied as an ``ndarray``
(how :class:`repro.core.parallel_dp.LevelIndex` stores anti-diagonals)
is sliced into ``ndarray`` chunks — no per-element boxing into Python
ints — so the vectorized kernel consumes index arrays end-to-end.
Plain sequences keep the historical list-of-lists behaviour.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

import numpy as np

T = TypeVar("T")


def round_robin_partition(items: Sequence[T], num_workers: int) -> list[Sequence[T]]:
    """Split ``items`` into ``num_workers`` chunks, item ``i`` to worker
    ``i mod num_workers`` (Alg. 3 semantics).  Trailing workers may receive
    empty chunks when there are fewer items than workers.  ``ndarray``
    input yields ``ndarray`` (strided-view) chunks; other sequences yield
    lists.

    >>> round_robin_partition([0, 1, 2, 3, 4], 2)
    [[0, 2, 4], [1, 3]]
    """
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    if isinstance(items, np.ndarray):
        return [items[w::num_workers] for w in range(num_workers)]
    return [list(items[w::num_workers]) for w in range(num_workers)]


def block_partition(items: Sequence[T], num_workers: int) -> list[Sequence[T]]:
    """Split ``items`` into ``num_workers`` contiguous blocks whose sizes
    differ by at most one.  ``ndarray`` input yields ``ndarray`` chunks.

    >>> block_partition([0, 1, 2, 3, 4], 2)
    [[0, 1, 2], [3, 4]]
    """
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    n = len(items)
    base, extra = divmod(n, num_workers)
    out: list[Sequence[T]] = []
    start = 0
    is_array = isinstance(items, np.ndarray)
    for w in range(num_workers):
        size = base + (1 if w < extra else 0)
        chunk = items[start : start + size]
        out.append(chunk if is_array else list(chunk))
        start += size
    return out


def max_chunk_size(num_items: int, num_workers: int) -> int:
    """``ceil(q_l / P)`` — the per-processor iteration bound of Alg. 3."""
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    return -(-num_items // num_workers)


# ---------------------------------------------------------------------------
# Contiguous flat-index blocks (persistent per-worker ownership)
# ---------------------------------------------------------------------------

def flat_block_bounds(table_size: int, num_blocks: int) -> np.ndarray:
    """Boundaries of ``num_blocks`` contiguous, near-equal flat-index
    blocks covering ``[0, table_size)``.

    Returns an ``int64`` array of ``num_blocks + 1`` ascending bounds;
    block ``b`` owns flat indices ``[bounds[b], bounds[b+1])``.  The
    same bounds are used for *every* level of a probe, which is what
    gives a worker persistent ownership of its slice of the table: the
    rows it writes at level ``l`` are the rows it reads from at later
    levels whenever the predecessor stays in-block.

    >>> flat_block_bounds(10, 3).tolist()
    [0, 4, 7, 10]
    """
    if num_blocks < 1:
        raise ValueError(f"num_blocks must be >= 1, got {num_blocks}")
    if table_size < 0:
        raise ValueError(f"table_size must be >= 0, got {table_size}")
    base, extra = divmod(table_size, num_blocks)
    sizes = [base + (1 if b < extra else 0) for b in range(num_blocks)]
    return np.cumsum([0] + sizes, dtype=np.int64)


def split_level_by_blocks(
    level: np.ndarray, bounds: np.ndarray
) -> list[np.ndarray]:
    """Split one level's ascending flat-index array at the block bounds.

    ``level`` must be sorted ascending (how
    :func:`repro.core.kernels.build_level_arrays` emits anti-diagonals);
    the split is two ``searchsorted`` calls per block boundary, no
    copying.  Levels narrower than the block count yield empty chunks
    for the blocks that own none of their states — including fully
    empty levels, which yield all-empty chunks.

    >>> import numpy as np
    >>> [c.tolist() for c in split_level_by_blocks(
    ...     np.array([1, 3, 4, 8], dtype=np.int64),
    ...     flat_block_bounds(10, 3))]
    [[1, 3], [4], [8]]
    """
    level = np.asarray(level, dtype=np.int64)
    cuts = np.searchsorted(level, bounds, side="left")
    return [
        level[cuts[b] : cuts[b + 1]] for b in range(len(bounds) - 1)
    ]
