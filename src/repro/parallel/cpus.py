"""Usable-CPU detection for ``--workers auto``.

"How many workers should a parallel solve use?" has three different
answers on a modern Linux host, and picking the wrong one silently
oversubscribes the machine:

* ``os.cpu_count()`` reports the *installed* CPUs, ignoring both the
  process affinity mask and any cgroup CPU quota — inside a container
  limited to one core it happily answers 32;
* ``os.sched_getaffinity(0)`` respects the affinity mask (and is what
  ``os.process_cpu_count()`` returns on Python >= 3.13) but still
  ignores cgroup *bandwidth* quotas (``cpu.max`` / ``cfs_quota_us``),
  the mechanism container runtimes actually use for ``--cpus=2``;
* the cgroup quota bounds how much CPU time the kernel will grant per
  period regardless of how many cores are visible.

:func:`usable_cpus` takes the minimum of all available signals — the
honest amount of parallelism the process can really get — and
:func:`resolve_workers` turns the CLI/bench spelling ``"auto"`` into
that number.  Oversubscribing past this value is exactly the failure
mode the batched wavefront avoids (more blocks than cores is pure
barrier overhead), so the tile planner coarsens to it as well.
"""

from __future__ import annotations

import os
from pathlib import Path

#: cgroup v2 unified hierarchy mount point.
_CGROUP_V2_CPU_MAX = Path("/sys/fs/cgroup/cpu.max")
#: cgroup v1 CFS bandwidth files.
_CGROUP_V1_QUOTA = Path("/sys/fs/cgroup/cpu/cpu.cfs_quota_us")
_CGROUP_V1_PERIOD = Path("/sys/fs/cgroup/cpu/cpu.cfs_period_us")


def _read_first_line(path: Path) -> str | None:
    try:
        return path.read_text().splitlines()[0].strip()
    except (OSError, IndexError):
        return None


def cgroup_cpu_quota(
    cpu_max: Path = _CGROUP_V2_CPU_MAX,
    quota_us: Path = _CGROUP_V1_QUOTA,
    period_us: Path = _CGROUP_V1_PERIOD,
) -> int | None:
    """CPU limit imposed by the cgroup the process runs in, in whole
    CPUs (rounded up), or ``None`` when unlimited / undetectable.

    Reads the cgroup v2 ``cpu.max`` file (``"<quota> <period>"`` in
    microseconds, or ``"max <period>"`` for no limit) and falls back to
    the v1 ``cpu.cfs_quota_us`` / ``cpu.cfs_period_us`` pair (quota
    ``-1`` means no limit).  The paths are injectable for tests.
    """
    line = _read_first_line(cpu_max)
    if line is not None:
        parts = line.split()
        if len(parts) == 2 and parts[0] != "max":
            try:
                quota, period = int(parts[0]), int(parts[1])
            except ValueError:
                return None
            if quota > 0 and period > 0:
                return max(1, -(-quota // period))
        return None
    quota_line = _read_first_line(quota_us)
    period_line = _read_first_line(period_us)
    if quota_line is None or period_line is None:
        return None
    try:
        quota, period = int(quota_line), int(period_line)
    except ValueError:
        return None
    if quota <= 0 or period <= 0:
        return None
    return max(1, -(-quota // period))


def usable_cpus() -> int:
    """The number of CPUs this process can actually use: the minimum of
    the affinity mask (``os.process_cpu_count()`` where available,
    ``sched_getaffinity`` otherwise), the cgroup CPU quota, and the
    installed count.  Always at least 1.
    """
    candidates: list[int] = []
    process_count = getattr(os, "process_cpu_count", None)
    if process_count is not None:  # pragma: no cover - Python >= 3.13
        counted = process_count()
        if counted:
            candidates.append(counted)
    elif hasattr(os, "sched_getaffinity"):
        try:
            candidates.append(len(os.sched_getaffinity(0)))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    installed = os.cpu_count()
    if installed:
        candidates.append(installed)
    quota = cgroup_cpu_quota()
    if quota is not None:
        candidates.append(quota)
    return max(1, min(candidates)) if candidates else 1


def resolve_workers(spec: int | str | None, *, default: int | None = None) -> int:
    """Turn a worker specification into a concrete positive count.

    ``"auto"`` (case-insensitive) and ``None`` resolve to
    :func:`usable_cpus` — unless *default* is given, which then wins for
    ``None`` only.  Integer strings and ints pass through after
    validation.  This is the single interpretation point for the CLI's
    ``--workers`` flag and the benchmarks.
    """
    if spec is None:
        return default if default is not None else usable_cpus()
    if isinstance(spec, str):
        text = spec.strip().lower()
        if text == "auto":
            return usable_cpus()
        try:
            spec = int(text)
        except ValueError:
            raise ValueError(
                f"workers must be a positive integer or 'auto', got {spec!r}"
            ) from None
    if spec < 1:
        raise ValueError(f"workers must be >= 1, got {spec}")
    return int(spec)
