"""Generic level-synchronous (wavefront) driver.

A wavefront computation is described by

* an ordered sequence of *levels*; and
* for each level, a list of independent *work items*.

The driver partitions each level's items across ``P`` workers
(round-robin, as in Alg. 3), hands the chunks to an
:class:`~repro.parallel.executor.Executor`, and waits for the implicit
barrier before moving to the next level.  A per-level observer hook lets
callers account costs (the simulated multicore machine plugs in there).

Levels may be any sequences; numpy index arrays (how the DP's
:class:`~repro.core.parallel_dp.LevelIndex` stores anti-diagonals) are
partitioned by strided slicing without boxing, and the chunks reach the
worker as arrays — the contract the vectorized
:class:`~repro.core.kernels.LevelKernel` relies on.

This module is deliberately independent of the DP so it can drive any
non-serial monadic recurrence — the tests exercise it with a toy
triangular recurrence as well as with the real DP table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.parallel.executor import Executor, SerialExecutor
from repro.parallel.partition import round_robin_partition


@dataclass
class WavefrontRun:
    """Summary of one wavefront execution."""

    num_levels: int = 0
    total_items: int = 0
    level_sizes: list[int] = field(default_factory=list)

    @property
    def max_level_size(self) -> int:
        return max(self.level_sizes, default=0)


def run_wavefront(
    levels: Iterable[Sequence[Any]],
    worker: Callable[[Sequence[Any]], Any],
    executor: Executor | None = None,
    *,
    observer: Callable[[int, Sequence[Any], list[Any]], None] | None = None,
) -> WavefrontRun:
    """Execute ``worker`` over every level's items with a barrier between
    levels.

    Parameters
    ----------
    levels:
        Iterable of per-level item sequences, in dependency order.
    worker:
        Called once per non-empty chunk with the chunk's items.  Must
        communicate results through shared state (e.g. a DP table); the
        driver only guarantees ordering.
    executor:
        Backend; defaults to a single-worker :class:`SerialExecutor`.
    observer:
        Optional callback ``(level_index, items, chunk_results)`` invoked
        after each level's barrier — the hook for cost accounting.
    """
    if executor is None:
        executor = SerialExecutor()
    run = WavefrontRun()
    for level_index, items in enumerate(levels):
        chunks = round_robin_partition(items, executor.num_workers)
        results = executor.map_chunks(worker, chunks)
        run.num_levels += 1
        run.total_items += len(items)
        run.level_sizes.append(len(items))
        if observer is not None:
            observer(level_index, items, results)
    return run
