"""Tile planning for the batched (coarse-grained) wavefront.

The per-level wavefront — partition every anti-diagonal across ``P``
workers, barrier, next level — is faithful to Alg. 3 but synchronizes
``n'`` times per probe and dispatches ``P`` sub-level chunks per level.
At realistic probe sizes (hundreds of states per level, ~100 vectorized
configuration passes per update) those overheads exceed the work being
parallelized, which is why the benchmarks showed every parallel backend
*losing* to the fused serial sweep.

This module plans the coarse replacement.  The state space is cut into
``B`` contiguous flat-index *blocks* (persistent per-worker ownership,
:func:`repro.parallel.partition.flat_block_bounds`) and the levels into
``R`` contiguous *runs*; the unit of scheduling is the **tile** — one
block × one run of levels.  Tiles execute along tile anti-diagonals:
on diagonal ``t`` every block ``b`` works on run ``t - b``, and there is
**one barrier per diagonal** — ``B + R - 1`` barriers total instead of
``n'``, with each worker touching only its own block of the table.

Correctness (why tiles on a diagonal are independent)
-----------------------------------------------------
A state's predecessor ``v - s`` (``s`` a non-zero configuration) has a
strictly smaller component sum — one level lower, hence the same or an
earlier *run* — and a strictly smaller flat index (row-major order is
monotone in every component), hence the same or an earlier *block*.  So
tile ``(b, r)`` depends only on tiles ``(b', r')`` with ``b' <= b`` and
``r' <= r``; tiles with the same ``b + r`` never depend on each other,
and within a tile the worker sweeps its levels in order, which resolves
the same-block/same-run dependencies.  The diagonal schedule is
therefore race-free and produces the bit-identical table.

Run length is chosen adaptively from a *measured* per-level cost model
(:class:`KernelCostModel`): more runs improve pipeline utilization
(``R·B`` useful tile slots over ``R + B - 1`` diagonals) but each
diagonal pays a barrier, so :func:`plan_tiles` minimizes the modeled
makespan ``(R + B - 1) · (work/(R·B) + c_barrier)`` — giving
``R* = sqrt((B-1)·work / (B·c_barrier))`` — and coarsens ``B`` down
when the table cannot keep ``B`` blocks busy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.parallel.partition import flat_block_bounds, split_level_by_blocks

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.kernels import LevelKernel


@dataclass(frozen=True)
class KernelCostModel:
    """Affine per-level cost of one :meth:`LevelKernel.update` call.

    ``seconds(q) = alpha * |C| + beta * q * |C|`` — ``alpha`` is the
    fixed cost of one vectorized configuration pass (mask allocation,
    numpy dispatch), ``beta`` the marginal cost per state per pass.
    Defaults are conservative laptop-class numbers; :meth:`measure`
    replaces them with two timed updates on the actual kernel.
    """

    alpha_seconds: float = 4e-6
    beta_seconds: float = 1.2e-8

    def level_seconds(self, num_states: int, num_configs: int) -> float:
        """Modeled seconds for one update over ``num_states`` states with
        ``num_configs`` configuration passes (at least one pass — the
        unrank/scatter work exists even for an empty configuration set)."""
        if num_states <= 0:
            return 0.0
        passes = max(1, num_configs)
        return passes * (self.alpha_seconds + self.beta_seconds * num_states)

    @classmethod
    def measure(
        cls, kernel: "LevelKernel", level: np.ndarray, table_size: int
    ) -> "KernelCostModel":
        """Fit ``alpha``/``beta`` by timing the kernel on a small and a
        large slice of *level* against a scratch table.

        Falls back to the defaults when the level is too narrow to
        separate the two terms or the fit degenerates (non-positive
        coefficients from timer noise).
        """
        default = cls()
        level = np.asarray(level, dtype=np.int64)
        q_big = len(level)
        q_small = min(32, q_big)
        if q_big < 4 * q_small or kernel.num_configs == 0:
            return default
        scratch = kernel.allocate_table(table_size)
        small, big = level[:q_small], level

        def timed(flats: np.ndarray) -> float:
            t0 = time.perf_counter()
            kernel.update(scratch, flats)
            return time.perf_counter() - t0

        timed(small)  # warm caches / allocator before timing
        t_small = min(timed(small), timed(small))
        t_big = min(timed(big), timed(big))
        passes = kernel.num_configs
        beta = (t_big - t_small) / (passes * (q_big - q_small))
        alpha = t_small / passes - beta * q_small
        if beta <= 0 or alpha <= 0:
            return default
        return cls(alpha_seconds=alpha, beta_seconds=beta)


#: Modeled cost of one diagonal barrier + dispatch on a thread pool.
DEFAULT_BARRIER_SECONDS = 1e-4


def level_sizes_from_dims(dims: Sequence[int]) -> np.ndarray:
    """Anti-diagonal widths ``q_0..q_{n'}`` of a table with the given axis
    extents, without materializing any state: the coefficients of
    ``prod_i (1 + x + ... + x^{d_i - 1})``.  Costs ``O(n' * sigma^0)``
    polynomial convolutions instead of an ``O(sigma)`` unranking pass —
    cheap enough to size a probe *before* deciding how to run it.

    >>> level_sizes_from_dims([2, 3]).tolist()
    [1, 2, 2, 1]
    >>> level_sizes_from_dims([]).tolist()
    [1]
    """
    sizes = np.ones(1, dtype=np.int64)
    for d in dims:
        if int(d) < 1:
            raise ValueError(f"axis extents must be >= 1, got {d}")
        sizes = np.convolve(sizes, np.ones(int(d), dtype=np.int64))
    return sizes


@dataclass(frozen=True)
class TilePlan:
    """Geometry of one batched wavefront: blocks × runs, by diagonal.

    ``block_bounds`` are the flat-index boundaries (``num_blocks + 1``
    values); ``runs`` are half-open ``(start_level, end_level)`` ranges
    covering levels ``1..n'`` in order.  Tile ``(b, r)`` is block ``b``
    of runs ``r``; diagonal ``t`` holds the tiles with ``b + r = t``.
    """

    block_bounds: tuple[int, ...]
    runs: tuple[tuple[int, int], ...]

    @property
    def num_blocks(self) -> int:
        return len(self.block_bounds) - 1

    @property
    def num_runs(self) -> int:
        return len(self.runs)

    @property
    def num_diagonals(self) -> int:
        """Barriers the schedule pays: ``B + R - 1`` (0 when empty)."""
        if not self.runs:
            return 0
        return self.num_blocks + self.num_runs - 1

    def tiles_on_diagonal(self, t: int) -> list[tuple[int, int]]:
        """The ``(block, run)`` tiles active on diagonal ``t``, by block."""
        return [
            (b, t - b)
            for b in range(self.num_blocks)
            if 0 <= t - b < self.num_runs
        ]


def plan_tiles(
    level_sizes: Sequence[int],
    table_size: int,
    num_workers: int,
    *,
    num_configs: int = 1,
    cost: KernelCostModel | None = None,
    barrier_seconds: float = DEFAULT_BARRIER_SECONDS,
) -> TilePlan:
    """Choose blocks and level runs for one probe.

    ``level_sizes`` includes level 0 (the seeded origin state); runs
    cover levels ``1..n'``.  The run count minimizes the modeled
    makespan (module docstring): heavy probes get ``R ≈ sqrt(work /
    barrier)`` runs of near-equal modeled cost, light probes collapse to
    one run — and when even ``B`` runs are not worth their barriers the
    block count coarsens too, down to a single serial sweep tile.
    """
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    model = cost if cost is not None else KernelCostModel()
    sizes = [int(q) for q in level_sizes[1:]]
    num_levels = len(sizes)
    if num_levels == 0 or table_size <= 1:
        return TilePlan(block_bounds=(0, max(0, table_size)), runs=())
    costs = [model.level_seconds(q, num_configs) for q in sizes]
    total = sum(costs)

    blocks = min(num_workers, max(sizes), table_size)
    runs = blocks  # minimum for full-width diagonals
    if blocks > 1:
        ideal = ((blocks - 1) * total / (blocks * barrier_seconds)) ** 0.5
        runs = int(max(blocks, min(num_levels, ideal)))
        # A plan whose modeled makespan loses to the serial sweep is not
        # worth any barriers at all: collapse to one tile.
        ramped = (runs + blocks - 1) * (
            total / (runs * blocks) + barrier_seconds
        )
        if ramped >= total:
            blocks, runs = 1, 1
    runs = min(runs, num_levels)

    # Split levels 1..n' into `runs` contiguous groups of near-equal
    # modeled cost (greedy cumulative thresholds).  A cut is forced once
    # the remaining levels are only just enough for the remaining cuts,
    # so cheap leading levels cannot starve the plan down to one run.
    bounds = [1]
    acc = 0.0
    threshold_idx = 1
    for lvl, c in enumerate(costs, start=1):
        acc += c
        remaining_levels = num_levels - lvl
        remaining_cuts = runs - threshold_idx
        if threshold_idx < runs and remaining_levels >= remaining_cuts and (
            acc >= threshold_idx * total / runs
            or remaining_levels == remaining_cuts
        ):
            bounds.append(lvl + 1)
            threshold_idx += 1
    bounds.append(num_levels + 1)
    run_ranges = tuple(
        (bounds[i], bounds[i + 1])
        for i in range(len(bounds) - 1)
        if bounds[i] < bounds[i + 1]
    )
    return TilePlan(
        block_bounds=tuple(
            int(b) for b in flat_block_bounds(table_size, blocks)
        ),
        runs=run_ranges,
    )


def build_tiles(
    levels: Sequence[np.ndarray], plan: TilePlan
) -> list[list[list[np.ndarray]]]:
    """Materialize the per-tile index arrays: ``tiles[r][b]`` is the list
    of per-level chunks (levels of run ``r`` restricted to block ``b``,
    in level order).  Empty chunks are kept so the level structure stays
    aligned; a tile whose chunks are all empty simply does no work.
    """
    bounds = np.asarray(plan.block_bounds, dtype=np.int64)
    num_blocks = plan.num_blocks
    tiles: list[list[list[np.ndarray]]] = []
    for lo, hi in plan.runs:
        per_block: list[list[np.ndarray]] = [[] for _ in range(num_blocks)]
        for level in levels[lo:hi]:
            for b, chunk in enumerate(split_level_by_blocks(level, bounds)):
                per_block[b].append(chunk)
        tiles.append(per_block)
    return tiles
