"""Pluggable executors for one level of a wavefront computation.

An :class:`Executor` receives a worker function and a list of chunks
(one per worker) and runs ``fn(chunk)`` for every non-empty chunk,
returning the results in chunk order.  Completing the call *is* the level
barrier.

Backends
--------
``SerialExecutor``
    Runs chunks in a plain loop.  Reference semantics, zero overhead —
    also what the sequential PTAS uses.
``ThreadExecutor``
    A persistent ``ThreadPoolExecutor``.  This is the faithful
    shared-memory implementation of the paper's OpenMP design: all
    workers read and write the same DP table with no copying.  The
    :class:`~repro.core.kernels.LevelKernel` workers release the GIL
    inside numpy, so this backend genuinely scales on multicore hosts
    (pure-Python workers would serialize — see DESIGN.md §6).
``ProcessExecutor``
    A persistent ``ProcessPoolExecutor`` for picklable, self-contained
    chunks.  True parallelism on multicore hosts; per-chunk shipping
    costs apply.

Reusable pools
--------------
Pool startup is expensive — process spawning in particular costs far
more than one small DP level.  A ``P || Cmax`` solve issues one wavefront
per bisection probe, so paying pool construction per probe swamps the
work being parallelized.  :func:`make_executor` therefore has a
*reusable-pool* mode (``reuse=True``): the returned executor wraps a
pool drawn from a per-process cache keyed by ``(backend, num_workers)``,
and ``close()`` parks the pool back in the cache instead of shutting it
down.  The bisection driver opens one reusable executor and threads it
through every probe; workers persist across the whole solve.
:func:`shutdown_pools` tears the cache down (also registered
``atexit``).

Executors are context managers; ``SerialExecutor`` is stateless.
"""

from __future__ import annotations

import abc
import atexit
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Sequence


class _ImmediateFuture:
    """Already-resolved future returned by the serial :meth:`Executor.submit`."""

    __slots__ = ("_value", "_exc")

    def __init__(self, value: Any = None, exc: BaseException | None = None):
        self._value = value
        self._exc = exc

    def result(self) -> Any:
        """The computed value (re-raises the captured exception, if any)."""
        if self._exc is not None:
            raise self._exc
        return self._value


class Executor(abc.ABC):
    """Runs the chunks of one level and blocks until all complete."""

    #: Number of workers this executor schedules onto.
    num_workers: int = 1

    @abc.abstractmethod
    def map_chunks(
        self, fn: Callable[[Any], Any], chunks: Sequence[Any]
    ) -> list[Any]:
        """Execute ``fn`` over every chunk; return results in chunk order.

        Empty chunks (empty sequences) are skipped and yield ``None`` in
        the result list, mirroring a processor that sits idle during a
        level with ``q_l < P``.
        """

    def submit(self, fn: Callable[[Any], Any], arg: Any) -> Any:
        """Start ``fn(arg)`` without blocking; return a future-like handle
        whose ``result()`` blocks for (and returns or raises) the outcome.

        This is the pipelining primitive: the speculative bisection
        overlaps one probe's backtrack/reconstruction with the next
        round's DP sweeps by parking the former here.  The serial default
        runs inline and returns an already-resolved handle — same
        semantics, no concurrency.
        """
        try:
            return _ImmediateFuture(value=fn(arg))
        except BaseException as exc:  # noqa: BLE001 - futures carry any error
            return _ImmediateFuture(exc=exc)

    def close(self) -> None:
        """Release pooled resources (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def _is_empty(chunk: Any) -> bool:
    try:
        return len(chunk) == 0
    except TypeError:
        return False


class SerialExecutor(Executor):
    """Run every chunk in the calling thread, in order."""

    num_workers = 1

    def __init__(self, num_workers: int = 1):
        # A serial executor may *model* P workers (the wavefront driver
        # still partitions into P chunks); execution remains sequential.
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers

    def map_chunks(
        self, fn: Callable[[Any], Any], chunks: Sequence[Any]
    ) -> list[Any]:
        return [None if _is_empty(c) else fn(c) for c in chunks]


class ThreadExecutor(Executor):
    """Shared-memory thread pool (the OpenMP analogue)."""

    def __init__(self, num_workers: int):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self._pool = ThreadPoolExecutor(max_workers=num_workers)

    def map_chunks(
        self, fn: Callable[[Any], Any], chunks: Sequence[Any]
    ) -> list[Any]:
        futures = [
            None if _is_empty(c) else self._pool.submit(fn, c) for c in chunks
        ]
        return [f.result() if f is not None else None for f in futures]

    def submit(self, fn: Callable[[Any], Any], arg: Any) -> Any:
        """Asynchronous single task on the pool (a real future)."""
        return self._pool.submit(fn, arg)

    def close(self) -> None:
        self._pool.shutdown(wait=True)


class ProcessExecutor(Executor):
    """Process pool for picklable work (true multicore parallelism)."""

    def __init__(
        self,
        num_workers: int,
        initializer: Callable[..., None] | None = None,
        initargs: tuple[Any, ...] = (),
    ):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self._pool = ProcessPoolExecutor(
            max_workers=num_workers, initializer=initializer, initargs=initargs
        )

    def map_chunks(
        self, fn: Callable[[Any], Any], chunks: Sequence[Any]
    ) -> list[Any]:
        futures = [
            None if _is_empty(c) else self._pool.submit(fn, c) for c in chunks
        ]
        return [f.result() if f is not None else None for f in futures]

    def submit(self, fn: Callable[[Any], Any], arg: Any) -> Any:
        """Asynchronous single task on the pool (``fn``/``arg`` must pickle)."""
        return self._pool.submit(fn, arg)

    def close(self) -> None:
        self._pool.shutdown(wait=True)


# ---------------------------------------------------------------------------
# Reusable pools
# ---------------------------------------------------------------------------

#: Idle pooled executors, keyed by ``(backend, num_workers)``.
_POOL_CACHE: dict[tuple[str, int], list[Executor]] = {}


class ReusableExecutor(Executor):
    """Wrapper whose ``close()`` parks the wrapped pool for reuse.

    Handed out by ``make_executor(..., reuse=True)``.  The wrapped pool
    (exposed as :attr:`pool` so tests can assert pool identity across
    bisection probes) survives ``close()`` and is handed to the next
    ``reuse=True`` request with the same backend and worker count.
    """

    def __init__(self, inner: Executor, key: tuple[str, int]) -> None:
        self._inner = inner
        self._key = key
        self._released = False
        self.num_workers = inner.num_workers

    @property
    def pool(self) -> Executor:
        """The cached underlying executor (stable across reuse cycles)."""
        return self._inner

    def map_chunks(
        self, fn: Callable[[Any], Any], chunks: Sequence[Any]
    ) -> list[Any]:
        if self._released:
            raise RuntimeError("executor was released back to the pool cache")
        return self._inner.map_chunks(fn, chunks)

    def submit(self, fn: Callable[[Any], Any], arg: Any) -> Any:
        """Delegate to the wrapped pool (see :meth:`Executor.submit`)."""
        if self._released:
            raise RuntimeError("executor was released back to the pool cache")
        return self._inner.submit(fn, arg)

    def close(self) -> None:
        if not self._released:
            self._released = True
            _POOL_CACHE.setdefault(self._key, []).append(self._inner)


def shutdown_pools() -> None:
    """Shut down every idle cached pool (used by tests and ``atexit``)."""
    for idle in _POOL_CACHE.values():
        for ex in idle:
            ex.close()
    _POOL_CACHE.clear()


atexit.register(shutdown_pools)


def make_executor(
    backend: str, num_workers: int, *, reuse: bool = False, **kwargs: Any
) -> Executor:
    """Factory used by :func:`repro.core.parallel_dp.parallel_dp`.

    ``backend`` is one of ``"serial"``, ``"thread"``, ``"process"``.
    With ``reuse=True`` the thread/process pool is drawn from (and on
    ``close()`` returned to) a per-process cache, so repeated short-lived
    executors — one wavefront per bisection probe — share one warm pool
    instead of paying startup per probe.  Reusable pools are created bare
    (no initializer), hence ``reuse`` rejects extra keyword arguments.
    """
    if reuse and kwargs:
        raise TypeError(
            "reusable pools are created bare; initializer arguments "
            f"are not supported: {sorted(kwargs)}"
        )
    if backend == "serial":
        return SerialExecutor(num_workers)
    if backend not in ("thread", "process"):
        raise ValueError(
            f"unknown executor backend {backend!r}; expected serial/thread/process"
        )
    if reuse:
        key = (backend, num_workers)
        idle = _POOL_CACHE.get(key)
        if idle:
            inner = idle.pop()
        elif backend == "thread":
            inner = ThreadExecutor(num_workers)
        else:
            inner = ProcessExecutor(num_workers)
        return ReusableExecutor(inner, key)
    if backend == "thread":
        return ThreadExecutor(num_workers)
    return ProcessExecutor(num_workers, **kwargs)
