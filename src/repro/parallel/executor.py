"""Pluggable executors for one level of a wavefront computation.

An :class:`Executor` receives a worker function and a list of chunks
(one per worker) and runs ``fn(chunk)`` for every non-empty chunk,
returning the results in chunk order.  Completing the call *is* the level
barrier.

Backends
--------
``SerialExecutor``
    Runs chunks in a plain loop.  Reference semantics, zero overhead —
    also what the sequential PTAS uses.
``ThreadExecutor``
    A persistent ``ThreadPoolExecutor``.  This is the faithful
    shared-memory implementation of the paper's OpenMP design: all
    workers read and write the same DP table with no copying.  Under
    CPython the GIL serializes the pure-Python compute, so this backend
    demonstrates correctness, not speedup — see DESIGN.md §6.  (Workers
    that release the GIL, e.g. numpy kernels, do scale.)
``ProcessExecutor``
    A persistent ``ProcessPoolExecutor`` for picklable, self-contained
    chunks.  True parallelism on multicore hosts; per-chunk shipping
    costs apply.

Executors are context managers; ``SerialExecutor`` is stateless.
"""

from __future__ import annotations

import abc
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Sequence


class Executor(abc.ABC):
    """Runs the chunks of one level and blocks until all complete."""

    #: Number of workers this executor schedules onto.
    num_workers: int = 1

    @abc.abstractmethod
    def map_chunks(
        self, fn: Callable[[Any], Any], chunks: Sequence[Any]
    ) -> list[Any]:
        """Execute ``fn`` over every chunk; return results in chunk order.

        Empty chunks (empty sequences) are skipped and yield ``None`` in
        the result list, mirroring a processor that sits idle during a
        level with ``q_l < P``.
        """

    def close(self) -> None:
        """Release pooled resources (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def _is_empty(chunk: Any) -> bool:
    try:
        return len(chunk) == 0
    except TypeError:
        return False


class SerialExecutor(Executor):
    """Run every chunk in the calling thread, in order."""

    num_workers = 1

    def __init__(self, num_workers: int = 1):
        # A serial executor may *model* P workers (the wavefront driver
        # still partitions into P chunks); execution remains sequential.
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers

    def map_chunks(
        self, fn: Callable[[Any], Any], chunks: Sequence[Any]
    ) -> list[Any]:
        return [None if _is_empty(c) else fn(c) for c in chunks]


class ThreadExecutor(Executor):
    """Shared-memory thread pool (the OpenMP analogue)."""

    def __init__(self, num_workers: int):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self._pool = ThreadPoolExecutor(max_workers=num_workers)

    def map_chunks(
        self, fn: Callable[[Any], Any], chunks: Sequence[Any]
    ) -> list[Any]:
        futures = [
            None if _is_empty(c) else self._pool.submit(fn, c) for c in chunks
        ]
        return [f.result() if f is not None else None for f in futures]

    def close(self) -> None:
        self._pool.shutdown(wait=True)


class ProcessExecutor(Executor):
    """Process pool for picklable work (true multicore parallelism)."""

    def __init__(
        self,
        num_workers: int,
        initializer: Callable[..., None] | None = None,
        initargs: tuple[Any, ...] = (),
    ):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self._pool = ProcessPoolExecutor(
            max_workers=num_workers, initializer=initializer, initargs=initargs
        )

    def map_chunks(
        self, fn: Callable[[Any], Any], chunks: Sequence[Any]
    ) -> list[Any]:
        futures = [
            None if _is_empty(c) else self._pool.submit(fn, c) for c in chunks
        ]
        return [f.result() if f is not None else None for f in futures]

    def close(self) -> None:
        self._pool.shutdown(wait=True)


def make_executor(backend: str, num_workers: int, **kwargs: Any) -> Executor:
    """Factory used by :func:`repro.core.parallel_dp.parallel_dp`.

    ``backend`` is one of ``"serial"``, ``"thread"``, ``"process"``.
    """
    if backend == "serial":
        return SerialExecutor(num_workers)
    if backend == "thread":
        return ThreadExecutor(num_workers)
    if backend == "process":
        return ProcessExecutor(num_workers, **kwargs)
    raise ValueError(
        f"unknown executor backend {backend!r}; expected serial/thread/process"
    )
