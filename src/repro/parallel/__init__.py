"""Parallel execution substrate for level-synchronous (wavefront) loops.

The paper's Parallel DP (Alg. 3) is a sequence of barriers: each
anti-diagonal of the DP table is a *level*, the subproblems within a level
are independent, and levels must complete in order.  This subpackage
provides the generic machinery:

* :mod:`repro.parallel.partition` — the round-robin / block partitioning
  of a level's work across ``P`` workers (the "parallel for" of Alg. 3).
* :mod:`repro.parallel.executor` — pluggable backends that execute one
  level's chunks: in-line serial, shared-memory threads, or a process
  pool.  The simulated multicore machine lives in :mod:`repro.simcore`.
* :mod:`repro.parallel.wavefront` — the level-synchronous driver that
  strings partitioning and execution together and exposes per-level hooks
  used for cost accounting.
"""

from repro.parallel.executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)
from repro.parallel.partition import block_partition, round_robin_partition
from repro.parallel.wavefront import WavefrontRun, run_wavefront

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "make_executor",
    "round_robin_partition",
    "block_partition",
    "run_wavefront",
    "WavefrontRun",
]
