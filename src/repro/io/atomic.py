"""Durable filesystem primitives shared by the persistence layer.

Everything :mod:`repro.store` writes goes through these three idioms:

* :func:`fsync_path` — flush a file *and* its directory entry, so a
  record survives power loss once the call returns (the directory fsync
  is what makes a freshly created file durable on POSIX).
* :func:`append_line` — append one line to an open binary file and
  optionally fsync it; the unit of the append-only JSONL formats.
* :func:`atomic_write` — write-to-temp + fsync + :func:`os.replace`, the
  only safe way to *rewrite* a file (compaction, quarantine metadata):
  readers see either the old bytes or the new bytes, never a torn mix.

They are deliberately tiny and stdlib-only; on filesystems without
directory fsync (some CI sandboxes) the directory flush degrades to a
no-op rather than failing.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import BinaryIO


def fsync_dir(path: str | Path) -> None:
    """Flush the directory entry at *path* (no-op where unsupported)."""
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - directories not fsyncable here
        pass
    finally:
        os.close(fd)


def fsync_path(path: str | Path) -> None:
    """fsync the file at *path* and then its parent directory."""
    p = Path(path)
    fd = os.open(str(p), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
    fsync_dir(p.parent)


def append_line(fh: BinaryIO, line: str, *, sync: bool = True) -> int:
    """Append ``line`` (newline added) to *fh*; return the start offset.

    With ``sync=True`` the bytes are flushed and fsync'd before
    returning — the write-ahead guarantee the journal relies on.
    """
    offset = fh.tell()
    fh.write(line.encode("utf-8") + b"\n")
    fh.flush()
    if sync:
        os.fsync(fh.fileno())
    return offset


def atomic_write(path: str | Path, data: bytes) -> Path:
    """Replace *path* with *data* atomically (temp file + rename)."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    tmp = p.with_name(p.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, p)
    fsync_dir(p.parent)
    return p
