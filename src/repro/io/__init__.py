"""Instance and schedule serialization.

Interchange formats so the library can consume instances from other
tools (e.g. the classical OR benchmark sets for ``P || Cmax``) and emit
schedules that downstream systems can execute:

* :mod:`repro.io.instances` — read/write instances as JSON, CSV, and the
  plain text format used by the classical scheduling benchmark files
  (first line ``n m``, then one processing time per line).
* :mod:`repro.io.schedules` — schedule export/import as JSON, including
  enough metadata (makespan, loads, algorithm) for audit trails.
* :mod:`repro.io.atomic` — fsync'd appends and atomic file replacement,
  the durability primitives under :mod:`repro.store`.
"""

from repro.io.atomic import append_line, atomic_write, fsync_path
from repro.io.instances import (
    instance_from_json,
    instance_to_json,
    read_instance,
    write_instance,
)
from repro.io.schedules import (
    read_schedule,
    schedule_from_json,
    schedule_to_json,
    write_schedule,
)

__all__ = [
    "read_instance",
    "write_instance",
    "instance_to_json",
    "instance_from_json",
    "read_schedule",
    "write_schedule",
    "schedule_to_json",
    "schedule_from_json",
    "append_line",
    "atomic_write",
    "fsync_path",
]
