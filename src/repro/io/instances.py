"""Reading and writing problem instances.

Three formats, auto-detected from the file suffix by
:func:`read_instance` / :func:`write_instance`:

``.json``
    ``{"num_machines": m, "processing_times": [...], ...}`` — the
    canonical format; unknown keys are preserved on round-trip through
    the ``metadata`` mapping.
``.csv``
    One job per row with a header: ``job,processing_time``.  The machine
    count travels in a ``# machines=<m>`` comment on the first line.
``.txt``
    The classical benchmark layout: first line ``n m``, then ``n`` lines
    of one integer processing time each.  Lines starting with ``#`` are
    comments.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any

from repro.model.instance import Instance

FORMATS = (".json", ".csv", ".txt")


def instance_to_json(instance: Instance, metadata: dict[str, Any] | None = None) -> str:
    """Serialize to the canonical JSON document."""
    doc: dict[str, Any] = {
        "format": "repro-pcmax-instance",
        "version": 1,
        "num_machines": instance.num_machines,
        "processing_times": list(instance.processing_times),
    }
    if metadata:
        doc["metadata"] = dict(metadata)
    return json.dumps(doc, indent=2)


def instance_from_json(text: str) -> Instance:
    """Parse the canonical JSON document (strictly validated)."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"not valid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ValueError("instance JSON must be an object")
    try:
        times = doc["processing_times"]
        machines = doc["num_machines"]
    except KeyError as exc:
        raise ValueError(f"instance JSON missing key {exc}") from exc
    if not isinstance(times, list):
        raise ValueError("processing_times must be a list")
    return Instance(times, machines)


def _write_txt(instance: Instance, path: Path) -> None:
    lines = [f"{instance.num_jobs} {instance.num_machines}"]
    lines += [str(t) for t in instance.processing_times]
    path.write_text("\n".join(lines) + "\n")


def _read_txt(path: Path) -> Instance:
    tokens: list[int] = []
    for raw in path.read_text().splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        tokens.extend(int(x) for x in line.split())
    if len(tokens) < 2:
        raise ValueError(f"{path}: expected 'n m' header")
    n, m = tokens[0], tokens[1]
    times = tokens[2:]
    if len(times) != n:
        raise ValueError(
            f"{path}: header promises {n} jobs but {len(times)} times follow"
        )
    return Instance(times, m)


def _write_csv(instance: Instance, path: Path) -> None:
    with path.open("w", newline="") as fh:
        fh.write(f"# machines={instance.num_machines}\n")
        writer = csv.writer(fh)
        writer.writerow(["job", "processing_time"])
        for j, t in enumerate(instance.processing_times):
            writer.writerow([j, t])


def _read_csv(path: Path) -> Instance:
    machines: int | None = None
    times: list[int] = []
    with path.open() as fh:
        first = fh.readline()
        if first.startswith("#"):
            for part in first.lstrip("#").split():
                if part.startswith("machines="):
                    machines = int(part.split("=", 1)[1])
        else:
            fh.seek(0)
        reader = csv.DictReader(fh)
        if reader.fieldnames is None or "processing_time" not in reader.fieldnames:
            raise ValueError(f"{path}: missing 'processing_time' column")
        for row in reader:
            times.append(int(row["processing_time"]))
    if machines is None:
        raise ValueError(f"{path}: missing '# machines=<m>' comment line")
    return Instance(times, machines)


def write_instance(
    instance: Instance,
    path: str | Path,
    metadata: dict[str, Any] | None = None,
) -> Path:
    """Write an instance; the format follows the file suffix."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    if p.suffix == ".json":
        p.write_text(instance_to_json(instance, metadata) + "\n")
    elif p.suffix == ".csv":
        _write_csv(instance, p)
    elif p.suffix == ".txt":
        _write_txt(instance, p)
    else:
        raise ValueError(f"unsupported suffix {p.suffix!r}; expected {FORMATS}")
    return p


def read_instance(path: str | Path) -> Instance:
    """Read an instance; the format follows the file suffix."""
    p = Path(path)
    if p.suffix == ".json":
        return instance_from_json(p.read_text())
    if p.suffix == ".csv":
        return _read_csv(p)
    if p.suffix == ".txt":
        return _read_txt(p)
    raise ValueError(f"unsupported suffix {p.suffix!r}; expected {FORMATS}")
