"""Schedule serialization (JSON only — schedules are structured).

The document embeds the instance so a schedule file is self-contained
and re-validatable: loading re-runs the full partition validation and
recomputes the makespan, refusing documents whose recorded makespan
disagrees (a corrupted or hand-edited file should never be trusted
silently).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.model.instance import Instance
from repro.model.schedule import Schedule


def schedule_to_json(
    schedule: Schedule, metadata: dict[str, Any] | None = None
) -> str:
    """Serialize a schedule (with its instance embedded) to JSON."""
    doc: dict[str, Any] = {
        "format": "repro-pcmax-schedule",
        "version": 1,
        "instance": {
            "num_machines": schedule.instance.num_machines,
            "processing_times": list(schedule.instance.processing_times),
        },
        "assignment": [list(grp) for grp in schedule.assignment],
        "makespan": schedule.makespan,
        "machine_loads": list(schedule.machine_loads),
    }
    if metadata:
        doc["metadata"] = dict(metadata)
    return json.dumps(doc, indent=2)


def schedule_from_json(text: str) -> Schedule:
    """Parse and re-validate a schedule document (strict)."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"not valid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ValueError("schedule JSON must be an object")
    try:
        inst_doc = doc["instance"]
        assignment = doc["assignment"]
    except KeyError as exc:
        raise ValueError(f"schedule JSON missing key {exc}") from exc
    instance = Instance(
        inst_doc["processing_times"], inst_doc["num_machines"]
    )
    schedule = Schedule(instance, assignment)
    recorded = doc.get("makespan")
    if recorded is not None and recorded != schedule.makespan:
        raise ValueError(
            f"recorded makespan {recorded} disagrees with recomputed "
            f"{schedule.makespan}; refusing corrupted document"
        )
    return schedule


def write_schedule(
    schedule: Schedule,
    path: str | Path,
    metadata: dict[str, Any] | None = None,
) -> Path:
    """Write a schedule JSON file; returns the path."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(schedule_to_json(schedule, metadata) + "\n")
    return p


def read_schedule(path: str | Path) -> Schedule:
    """Load and re-validate a schedule JSON file."""
    return schedule_from_json(Path(path).read_text())
