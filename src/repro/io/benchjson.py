"""BENCH_dp.json bookkeeping: fingerprinted, deduplicated benchmark runs.

``BENCH_dp.json`` at the repository root is shared by several benchmarks
(the wavefront kernel sweep, the durable-store latency tiers), each
owning a top-level *section*.  Historically each benchmark merged with a
blind ``dict.update``, which had two failure modes:

* runs measured against *different instances* (a changed generator, a
  different ``k``) accumulated side by side and were indistinguishable;
* re-running a benchmark with a different backend matrix left stale
  entries from the previous matrix in place.

This module fixes both.  Every run list is stamped with the *instance
fingerprint* — a short SHA-256 over the canonical JSON of the instance
description — and :func:`merge_runs` deduplicates by configuration key
(backend, workers, schedule, …) while dropping entries whose fingerprint
no longer matches the instance being measured.  :func:`update_section`
is the one write path: read-modify-write of a single section, leaving
every other benchmark's section untouched.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

#: Default fields identifying one run configuration within a section.
DEFAULT_RUN_KEY = ("backend", "workers")


def canonical_json(obj: Any) -> str:
    """Deterministic JSON text: sorted keys, compact separators."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def instance_fingerprint(instance: Mapping[str, Any]) -> str:
    """Short stable fingerprint of an instance description.

    >>> instance_fingerprint({"family": "u_10n", "m": 10, "n": 50})
    '32266210dfb2'
    >>> instance_fingerprint({"n": 50, "m": 10, "family": "u_10n"})
    '32266210dfb2'
    """
    digest = hashlib.sha256(canonical_json(dict(instance)).encode()).hexdigest()
    return digest[:12]


def stamp_runs(
    runs: Iterable[Mapping[str, Any]], fingerprint: str
) -> list[dict[str, Any]]:
    """Copies of *runs* each carrying ``fingerprint`` (existing stamps
    are overwritten — a run belongs to the instance it was measured on)."""
    return [{**dict(r), "fingerprint": fingerprint} for r in runs]


def merge_runs(
    existing: Iterable[Mapping[str, Any]] | None,
    new: Iterable[Mapping[str, Any]],
    fingerprint: str,
    *,
    key_fields: Sequence[str] = DEFAULT_RUN_KEY,
) -> list[dict[str, Any]]:
    """Merge *new* runs over *existing* ones, deduplicated and de-staled.

    A new run replaces any existing run with the same configuration key
    (the tuple of ``key_fields`` values); existing runs whose
    ``fingerprint`` differs from the current one are dropped entirely —
    they were measured against a different instance and would silently
    poison trend comparisons.  Survivors keep their relative order,
    followed by the new runs in their given order.

    >>> old = [{"backend": "thread", "workers": 2, "fingerprint": "aaa"},
    ...        {"backend": "serial", "workers": 1, "fingerprint": "bbb"}]
    >>> new = [{"backend": "thread", "workers": 2, "seconds": 1.0}]
    >>> merged = merge_runs(old, new, "aaa")
    >>> [(r["backend"], r.get("seconds")) for r in merged]
    [('thread', 1.0)]
    """
    stamped_new = stamp_runs(new, fingerprint)
    new_keys = {
        tuple(r.get(f) for f in key_fields) for r in stamped_new
    }
    kept = [
        dict(r)
        for r in (existing or [])
        if r.get("fingerprint") == fingerprint
        and tuple(r.get(f) for f in key_fields) not in new_keys
    ]
    return kept + stamped_new


def load_bench(path: str | Path) -> dict[str, Any]:
    """The whole benchmark file as a dict (``{}`` when absent)."""
    path = Path(path)
    if not path.exists():
        return {}
    return json.loads(path.read_text())


def update_section(
    path: str | Path, section: str, payload: Mapping[str, Any]
) -> dict[str, Any]:
    """Replace one top-level *section* of the benchmark file, preserving
    every other section, and return the full written document."""
    path = Path(path)
    existing = load_bench(path)
    existing[section] = dict(payload)
    path.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")
    return existing
