"""Cost model of the simulated shared-memory multicore machine.

All costs are expressed in abstract *operations*; one operation is one
scan of a machine configuration against one DP state (the unit the
paper's complexity analysis counts: an entry takes at most ``|C|`` time).
Conversion to seconds happens at calibration time: a measured serial run
provides ``seconds_per_op = measured_seconds / total_ops``.

The model's knobs:

``state_overhead_ops``
    Fixed per-subproblem cost (unranking the state vector, reading and
    writing the table entry) in addition to its configuration scans.
``config_enumeration_factor``
    Work per configuration considered at a state.  Alg. 3 (line 17)
    regenerates the configuration set ``C_v`` from scratch for *every*
    subproblem — a DFS over the ``k^2``-dimensional count box — so in the
    paper's implementation the per-state compute dwarfs the loop
    scheduling overheads.  The factor models the enumeration (plus the
    table reads and the min-reduction) per configuration; raising it
    pushes the simulated machine toward the pure load-balance limit
    ``sum_l q_l / sum_l ceil(q_l / P)``, lowering it makes barriers bite.
``barrier_ops``
    Cost of the level barrier, charged once per level to every processor.
    Barriers are what eventually limit wavefront scalability: with
    ``n' + 1`` levels, total barrier cost grows linearly in the number of
    anti-diagonals regardless of ``P``.
``dispatch_ops_per_chunk``
    Cost of handing one chunk of work to one processor per level (loop
    scheduling overhead).
``comm_ops_per_state``
    Communication charged per subproblem when running on more than one
    processor.  Zero for the paper's shared-memory target (reads hit the
    shared DP table directly); positive values model a message-passing
    realization where each state's dependencies must be shipped.  The
    ablation benchmark uses this to show *why* the paper targets shared
    memory: wavefront DP reads many scattered earlier entries per state,
    so per-state communication erodes speedup quickly.
``sequential_fraction_ops``
    Work that stays sequential each DP call (computing the ``D`` array is
    ``O(sigma / P)`` and *is* parallelized; bisection bookkeeping is not).
    Charged once per run on every processor.

Defaults were chosen so that simulated speedups on the paper's instance
families land in the ranges reported in Figs. 2–4 — near-linear at few
cores, 6–12x at 16 cores for the wide-table families, saturating early
for instances whose anti-diagonals are narrower than ``P`` — while
1-processor simulation reproduces the serial time exactly (no barrier or
dispatch is charged at P=1).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Abstract operation costs of the simulated machine."""

    state_overhead_ops: float = 2.0
    config_enumeration_factor: float = 25.0
    barrier_ops: float = 5.0
    dispatch_ops_per_chunk: float = 0.5
    comm_ops_per_state: float = 0.0
    sequential_fraction_ops: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "state_overhead_ops",
            "config_enumeration_factor",
            "barrier_ops",
            "dispatch_ops_per_chunk",
            "comm_ops_per_state",
            "sequential_fraction_ops",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def state_cost(self, config_scans: int) -> float:
        """Cost of computing one subproblem that considered
        ``config_scans`` machine configurations."""
        if config_scans < 0:
            raise ValueError("config_scans must be non-negative")
        return self.state_overhead_ops + self.config_enumeration_factor * float(
            config_scans
        )

    def level_fixed_cost(self, num_active_chunks: int, parallel: bool) -> float:
        """Per-level cost that does not depend on the subproblems: the
        barrier plus chunk dispatch.  A 1-processor run pays neither."""
        if not parallel:
            return 0.0
        return self.barrier_ops + self.dispatch_ops_per_chunk * max(
            num_active_chunks, 1
        )


#: Model used by the experiment harness unless overridden.
DEFAULT_COST_MODEL = CostModel()
