"""The simulated ``P``-processor shared-memory machine.

:class:`SimulatedMachine` replays the schedule of Alg. 3 on ``P`` virtual
processors:

* the subproblems of each level are assigned round-robin (iteration ``i``
  to processor ``i mod P``);
* a level completes when its slowest processor finishes (synchronous
  barrier), after which the barrier fee is charged;
* total parallel time is the sum of level times; total serial time is the
  sum of all subproblem costs with no overheads.

Both totals are in abstract operations; :meth:`SimulatedMachine.calibrate`
converts them to seconds using a measured serial wall-clock time so that
simulated parallel times are comparable against real timings of other
algorithms (the IP solver, LPT, LS).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.simcore.costmodel import CostModel, DEFAULT_COST_MODEL


@dataclass(frozen=True)
class LevelTrace:
    """Accounting record of one simulated level."""

    level: int
    num_items: int
    processor_busy_ops: tuple[float, ...]
    level_time_ops: float

    @property
    def busiest(self) -> float:
        return max(self.processor_busy_ops, default=0.0)

    @property
    def utilization(self) -> float:
        """Mean busy fraction of the processors during this level."""
        if self.level_time_ops == 0:
            return 1.0
        p = len(self.processor_busy_ops)
        return sum(self.processor_busy_ops) / (p * self.level_time_ops)


#: Within-level assignment policies.
#: ``round_robin`` — Alg. 3's static assignment (iteration i -> proc i mod P).
#: ``dynamic`` — greedy self-scheduling: each subproblem goes to the
#: processor that frees up first (an OpenMP ``schedule(dynamic)`` loop);
#: never worse than round-robin for a level's makespan, and strictly
#: better when per-state costs vary.
ASSIGNMENT_POLICIES = ("round_robin", "dynamic")


@dataclass
class SimulatedMachine:
    """Accumulates the cost of a wavefront run on ``P`` virtual processors."""

    num_processors: int
    cost_model: CostModel = field(default_factory=lambda: DEFAULT_COST_MODEL)
    parallel_ops: float = 0.0
    serial_ops: float = 0.0
    traces: list[LevelTrace] = field(default_factory=list)
    record_traces: bool = True
    assignment_policy: str = "round_robin"

    def __post_init__(self) -> None:
        if self.num_processors < 1:
            raise ValueError("num_processors must be >= 1")
        if self.assignment_policy not in ASSIGNMENT_POLICIES:
            raise ValueError(
                f"unknown assignment policy {self.assignment_policy!r}; "
                f"expected one of {ASSIGNMENT_POLICIES}"
            )

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_level(self, level: int, state_costs: Sequence[float]) -> None:
        """Charge one level whose subproblems cost ``state_costs`` ops.

        Under ``round_robin``, subproblem ``i`` runs on processor
        ``i mod P`` (Alg. 3); under ``dynamic``, each subproblem is taken
        by the processor that becomes idle first, in level order.  The
        level lasts as long as its busiest processor, plus the fixed
        per-level cost.
        """
        p = self.num_processors
        busy = [0.0] * p
        # Communication is a parallel-only cost: a 1-processor run reads
        # its own memory, so nothing is added to the serial total.
        comm = self.cost_model.comm_ops_per_state if p > 1 else 0.0
        if self.assignment_policy == "dynamic":
            import heapq

            heap = [(0.0, w) for w in range(p)]
            for cost in state_costs:
                load, w = heapq.heappop(heap)
                busy[w] = load + cost + comm
                heapq.heappush(heap, (busy[w], w))
        else:
            for i, cost in enumerate(state_costs):
                busy[i % p] += cost + comm
        active_chunks = min(len(state_costs), p)
        fixed = self.cost_model.level_fixed_cost(active_chunks, parallel=p > 1)
        level_time = max(busy, default=0.0) + fixed
        self.parallel_ops += level_time
        self.serial_ops += sum(state_costs)
        if self.record_traces:
            self.traces.append(
                LevelTrace(
                    level=level,
                    num_items=len(state_costs),
                    processor_busy_ops=tuple(busy),
                    level_time_ops=level_time,
                )
            )

    def record_uniform_level(
        self, level: int, num_items: int, cost_per_item: float
    ) -> None:
        """Fast path for levels whose subproblems cost the same: the
        busiest processor executes ``ceil(q_l / P)`` items."""
        p = self.num_processors
        per_proc_items = -(-num_items // p) if num_items else 0
        active_chunks = min(num_items, p)
        fixed = self.cost_model.level_fixed_cost(active_chunks, parallel=p > 1)
        comm = self.cost_model.comm_ops_per_state if p > 1 else 0.0
        level_time = per_proc_items * (cost_per_item + comm) + fixed
        self.parallel_ops += level_time
        self.serial_ops += num_items * cost_per_item
        if self.record_traces:
            busy = [
                (cost_per_item + comm) * len(range(w, num_items, p))
                for w in range(p)
            ]
            self.traces.append(
                LevelTrace(
                    level=level,
                    num_items=num_items,
                    processor_busy_ops=tuple(busy),
                    level_time_ops=level_time,
                )
            )

    def record_parallel_step(
        self,
        step: int,
        processor_busy_ops: Sequence[float],
        *,
        num_items: int | None = None,
    ) -> None:
        """Charge one synchronous step whose per-processor work is given
        directly — the accounting unit of the *batched* wavefront, where
        a step is one tile diagonal (each worker executes its whole tile
        between barriers) rather than one DP level.

        ``processor_busy_ops`` must have one entry per processor (zero
        for processors with no tile on this diagonal).  The step lasts as
        long as its busiest processor plus the fixed cost of one barrier
        and the dispatch of the active tiles; the serial total gets the
        plain sum, as always.
        """
        busy = [float(b) for b in processor_busy_ops]
        if len(busy) != self.num_processors:
            raise ValueError(
                f"expected {self.num_processors} busy entries, got {len(busy)}"
            )
        p = self.num_processors
        active = sum(1 for b in busy if b > 0)
        fixed = self.cost_model.level_fixed_cost(active, parallel=p > 1)
        step_time = max(busy, default=0.0) + fixed
        self.parallel_ops += step_time
        self.serial_ops += sum(busy)
        if self.record_traces:
            self.traces.append(
                LevelTrace(
                    level=step,
                    num_items=active if num_items is None else num_items,
                    processor_busy_ops=tuple(busy),
                    level_time_ops=step_time,
                )
            )

    def record_parallel_for(self, num_items: int, cost_per_item: float) -> None:
        """A standalone ``parallel for`` outside the level loop (Alg. 3
        lines 4–8, the ``D``-array computation)."""
        self.record_uniform_level(level=-1, num_items=num_items, cost_per_item=cost_per_item)

    def record_sequential(self, ops: float) -> None:
        """Work that cannot be parallelized (charged fully to both
        totals — it inflates parallel time as Amdahl dictates)."""
        if ops < 0:
            raise ValueError("ops must be non-negative")
        self.parallel_ops += ops
        self.serial_ops += ops

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def speedup(self) -> float:
        """Simulated speedup of this run versus a 1-processor execution of
        the same work with no parallel overheads."""
        if self.parallel_ops == 0:
            return 1.0
        return self.serial_ops / self.parallel_ops

    def calibrate(self, measured_serial_seconds: float) -> "CalibratedTimes":
        """Convert operation counts to seconds given the measured serial
        wall-clock time of the same computation."""
        if measured_serial_seconds < 0:
            raise ValueError("measured_serial_seconds must be non-negative")
        if self.serial_ops == 0:
            return CalibratedTimes(0.0, 0.0, 0.0)
        sec_per_op = measured_serial_seconds / self.serial_ops
        return CalibratedTimes(
            serial_seconds=measured_serial_seconds,
            parallel_seconds=self.parallel_ops * sec_per_op,
            seconds_per_op=sec_per_op,
        )

    def merge(self, other: "SimulatedMachine") -> None:
        """Fold another run's accounting into this one (used to aggregate
        the several DP invocations of one bisection)."""
        if other.num_processors != self.num_processors:
            raise ValueError("cannot merge runs with different processor counts")
        self.parallel_ops += other.parallel_ops
        self.serial_ops += other.serial_ops
        if self.record_traces:
            self.traces.extend(other.traces)


@dataclass(frozen=True)
class CalibratedTimes:
    """Operation counts converted to wall-clock seconds."""

    serial_seconds: float
    parallel_seconds: float
    seconds_per_op: float

    @property
    def speedup(self) -> float:
        if self.parallel_seconds == 0:
            return 1.0
        return self.serial_seconds / self.parallel_seconds
