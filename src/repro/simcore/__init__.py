"""Deterministic simulated multicore machine.

The paper's evaluation ran on a 16-core shared-memory system.  This
reproduction runs where only a single core (and CPython's GIL) is
available, so the speedup experiments are driven by a *simulated*
multicore executor instead: the wavefront schedule of Alg. 3 is executed
serially while a :class:`~repro.simcore.machine.SimulatedMachine` charges
every subproblem its abstract cost to one of ``P`` virtual processors
(round-robin within each level, exactly as Alg. 3 assigns iterations) and
takes the per-level maximum plus a barrier fee.  The resulting parallel
time estimate reproduces the qualitative behaviour the paper measures —
near-linear speedup while every anti-diagonal has at least ``P``
subproblems, saturating as the thin head/tail diagonals (``q_l < P``)
start to dominate.

The cost model is calibrated against measured serial run time, so the
simulated "seconds" are directly comparable to the wall-clock time of the
IP solver and the baselines.
"""

from repro.simcore.costmodel import CostModel
from repro.simcore.machine import LevelTrace, SimulatedMachine

__all__ = ["CostModel", "SimulatedMachine", "LevelTrace"]
