"""Rendering the simulated machine's execution profile.

Turns the per-level :class:`~repro.simcore.machine.LevelTrace` records
into terminal output: a utilization timeline (how busy the ``P``
processors were on each anti-diagonal) and a one-paragraph summary with
the Amdahl/Karp–Flatt diagnostics — the "why did my speedup saturate"
answer for a given run.
"""

from __future__ import annotations

from repro.analysis.scaling import karp_flatt
from repro.simcore.machine import SimulatedMachine


def utilization_timeline(
    machine: SimulatedMachine, width: int = 40, max_rows: int = 40
) -> str:
    """One row per recorded level: a bar of mean processor utilization.

    Long runs are subsampled to ``max_rows`` rows.
    """
    traces = machine.traces
    if not traces:
        return "(no traces recorded)"
    step = max(1, len(traces) // max_rows)
    lines = [
        f"level | items | utilization of {machine.num_processors} processors"
    ]
    for trace in traces[::step]:
        u = trace.utilization
        bar = "#" * round(u * width)
        label = "D-arr" if trace.level < 0 else f"{trace.level:5d}"
        lines.append(f"{label} | {trace.num_items:5d} | {bar:<{width}} {u:4.0%}")
    return "\n".join(lines)


def summarize(machine: SimulatedMachine) -> str:
    """One-paragraph diagnosis of a simulated run."""
    p = machine.num_processors
    s = machine.speedup
    parts = [
        f"{p} processors, speedup {s:.2f}x "
        f"(efficiency {s / p:.0%}) over {len(machine.traces)} levels;",
    ]
    if p >= 2 and s > 0:
        e = karp_flatt(min(s, p), p) if s <= p else 0.0
        parts.append(f"Karp-Flatt serial fraction {e:.3f};")
    if machine.traces:
        narrow = sum(
            1 for t in machine.traces if 0 < t.num_items < p
        )
        parts.append(
            f"{narrow}/{len(machine.traces)} levels narrower than P "
            "(the saturation source)."
        )
    return " ".join(parts)
