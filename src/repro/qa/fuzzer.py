"""The seeded differential fuzzer driving the :mod:`repro.qa` oracles.

:func:`run_fuzz` draws instances from the paper's workload families
(:mod:`repro.workloads.families`) — both ``p_cmax`` and ``q_cmax`` —
runs every registered engine whose declared capabilities match, and
applies the three oracle classes of :mod:`repro.qa.oracles`.  Every
failure is minimized with :func:`repro.qa.reduce.shrink_case` and
persisted as a replayable repro file (:mod:`repro.qa.corpus`).

Determinism: case ``k`` of a run is drawn from
``numpy.random.default_rng([seed, k])``, so a (seed, budget) pair names
the exact same case sequence on every machine, and any single case can
be regenerated without replaying its predecessors.

Cost gating keeps a 200-case run within a CI-sized budget: the
exhaustive ``brute`` engine only sees instances with at most
``brute_max_jobs`` jobs, the MILP engine runs on every ``ilp_every``-th
case (a HiGHS solve costs ~150ms; the others are sub-millisecond at
fuzz sizes), and the loopback-socket service oracle samples every
``service_every``-th case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from repro.model.problem import P_CMAX, Q_CMAX, canonical_problem_name
from repro.qa.corpus import ReproCase, write_repro
from repro.qa.oracles import (
    Violation,
    cross_engine_violations,
    metamorphic_violations,
    run_engines,
    service_equivalence_violations,
)
from repro.qa.reduce import shrink_case
from repro.service.registry import (
    EngineSpec,
    available_engines,
    get_engine,
)
from repro.workloads.families import FAMILIES, SPEED_FAMILIES

#: Engines too slow to re-run on every metamorphic twin (each invariant
#: costs the engine 1–3 extra solves per case).  They still face the
#: cross-engine oracle on their sampled cases.
HEAVY_ENGINES = frozenset({"ilp"})

#: Oracle-class names in reporting order.
ORACLES = ("cross_engine", "metamorphic", "service")


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs of one fuzzing run.

    ``extra_engines`` maps extra engine names to :class:`EngineSpec`
    values that ride alongside the registry — the hook the acceptance
    test uses to inject a deliberately buggy engine and watch the
    oracles catch it.  Extra engines never reach the service oracle
    (the server resolves names against the real registry).
    """

    seed: int = 0
    budget: int = 200
    problem: str = "both"
    corpus_dir: str | Path = "qa-corpus"
    eps: float = 0.3
    max_jobs: int = 12
    max_machines: int = 4
    brute_max_jobs: int = 10
    ilp_every: int = 8
    service_every: int = 25
    max_failures: int = 10
    engines: tuple[str, ...] = ()
    extra_engines: Mapping[str, EngineSpec] = field(default_factory=dict)
    metamorphic: bool = True
    service: bool = True

    def __post_init__(self) -> None:
        if self.problem not in ("both", P_CMAX, Q_CMAX):
            raise ValueError(
                f"problem must be one of "
                f"{sorted(('both', P_CMAX, Q_CMAX))}, got {self.problem!r}"
            )
        if self.budget < 0:
            raise ValueError("budget must be >= 0")


@dataclass(frozen=True)
class Failure:
    """One persisted fuzzing failure: the oracle class, the minimized
    case, the original un-minimized case, the violations observed on the
    minimized case, and the repro file written."""

    oracle: str
    case: ReproCase
    original: ReproCase
    violations: tuple[Violation, ...]
    path: Path


@dataclass
class FuzzReport:
    """Outcome of one :func:`run_fuzz` call."""

    config: FuzzConfig
    cases: int = 0
    engine_case_runs: int = 0
    pairs_covered: set = field(default_factory=set)
    failures: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True iff no oracle reported a violation."""
        return not self.failures

    def summary(self) -> str:
        """A human-readable one-paragraph account of the run."""
        pairs = ", ".join(
            f"{e}/{p}" for e, p in sorted(self.pairs_covered)
        )
        lines = [
            f"fuzz: {self.cases} cases, {self.engine_case_runs} engine runs, "
            f"{len(self.failures)} failure(s) "
            f"(seed={self.config.seed}, budget={self.config.budget}, "
            f"problem={self.config.problem})",
            f"pairs covered: {pairs}",
        ]
        for failure in self.failures:
            lines.append(
                f"  [{failure.oracle}] {failure.case.num_jobs} jobs x "
                f"{failure.case.machines} machines -> {failure.path}"
            )
            for violation in failure.violations[:3]:
                lines.append(f"    {violation}")
        return "\n".join(lines)


def _case_rng(seed: int, index: int) -> np.random.Generator:
    """The per-case generator: independent of every other case."""
    return np.random.default_rng([seed, index])


def draw_case(config: FuzzConfig, index: int) -> ReproCase:
    """Case *index* of the run — a family-drawn instance with the
    problem variant, size, and (for ``q_cmax``) speed family chosen by
    the per-case generator."""
    rng = _case_rng(config.seed, index)
    if config.problem == "both":
        problem = Q_CMAX if rng.integers(0, 2) else P_CMAX
    else:
        problem = canonical_problem_name(config.problem)
    m = int(rng.integers(1, config.max_machines + 1))
    n = int(rng.integers(1, config.max_jobs + 1))
    family = FAMILIES[sorted(FAMILIES)[int(rng.integers(0, len(FAMILIES)))]]
    n = min(family.job_count(m, n), config.max_jobs)
    lo, hi = family.bounds(m, n)
    times = tuple(int(t) for t in rng.integers(lo, hi + 1, size=n))
    if problem == Q_CMAX:
        speed_family = SPEED_FAMILIES[
            sorted(SPEED_FAMILIES)[int(rng.integers(0, len(SPEED_FAMILIES)))]
        ]
        speeds = tuple(int(s) for s in speed_family.draw(m, rng))
        return ReproCase(
            problem=problem,
            times=times,
            machines=m,
            speeds=speeds,
            eps=config.eps,
        )
    return ReproCase(
        problem=problem, times=times, machines=m, eps=config.eps
    )


def engines_for(
    config: FuzzConfig, case: ReproCase, index: int
) -> list[tuple[str, EngineSpec]]:
    """The (name, spec) pairs the oracles run on this case: registry
    engines whose capabilities cover the case's problem, cost-gated,
    plus any :attr:`FuzzConfig.extra_engines` that match."""
    names = config.engines or available_engines()
    selected: list[tuple[str, EngineSpec]] = []
    for name in names:
        spec = get_engine(name)
        if case.problem not in spec.problems:
            continue
        if name == "brute" and case.num_jobs > config.brute_max_jobs:
            continue
        if name in HEAVY_ENGINES and index % config.ilp_every != 0:
            continue
        selected.append((name, spec))
    for name, spec in sorted(config.extra_engines.items()):
        if case.problem in spec.problems:
            selected.append((name, spec))
    return selected


def _metamorphic_engines(
    engines: Sequence[tuple[str, EngineSpec]],
) -> list[tuple[str, EngineSpec]]:
    """The engine subset cheap enough for per-twin re-solves."""
    return [(n, s) for n, s in engines if n not in HEAVY_ENGINES]


def _case_violations(
    config: FuzzConfig, case: ReproCase, oracle: str, index: int
) -> list[Violation]:
    """Re-run one oracle class on *case* — the reducer's failure
    predicate and the replay path share this single code path, so a
    minimized case is guaranteed to still trip the oracle it was
    minimized against."""
    instance = case.instance()
    engines = engines_for(config, case, index)
    if oracle == "cross_engine":
        runs = run_engines(engines, instance, case.eps)
        return cross_engine_violations(instance, runs)
    if oracle == "metamorphic":
        rng = np.random.default_rng(
            [config.seed, int(case.fingerprint(), 16) % 2**31]
        )
        return metamorphic_violations(
            _metamorphic_engines(engines), instance, case.eps, rng=rng
        )
    if oracle == "service":
        violations: list[Violation] = []
        for name, _spec in engines:
            if name in config.extra_engines:
                continue
            violations.extend(
                service_equivalence_violations(instance, name, case.eps)
            )
        return violations
    raise ValueError(f"unknown oracle {oracle!r}; expected one of {sorted(ORACLES)}")


def _service_engine(
    engines: Sequence[tuple[str, EngineSpec]],
    config: FuzzConfig,
    rng: np.random.Generator,
) -> str | None:
    """One registry engine for the sampled service round trip."""
    eligible = sorted(
        n for n, _ in engines if n not in config.extra_engines
    )
    if not eligible:
        return None
    return eligible[int(rng.integers(0, len(eligible)))]


def _record_failure(
    report: FuzzReport,
    config: FuzzConfig,
    case: ReproCase,
    oracle: str,
    index: int,
    violations: list[Violation],
) -> None:
    """Minimize *case* against *oracle* and persist the repro file."""

    def fails(candidate: ReproCase) -> bool:
        return bool(_case_violations(config, candidate, oracle, index))

    minimized = shrink_case(case, fails)
    final = _case_violations(config, minimized, oracle, index) or violations
    path = write_repro(
        config.corpus_dir,
        minimized.replaced(
            engines=tuple(
                n for n, _ in engines_for(config, minimized, index)
            )
        ),
        final,
        oracle=oracle,
        original=case,
        seed=config.seed,
    )
    report.failures.append(
        Failure(
            oracle=oracle,
            case=minimized,
            original=case,
            violations=tuple(final),
            path=path,
        )
    )


def run_fuzz(config: FuzzConfig) -> FuzzReport:
    """Run the full differential fuzzing loop described in the module
    docstring; returns the :class:`FuzzReport` (``report.ok`` iff no
    oracle tripped).  Stops early after
    :attr:`FuzzConfig.max_failures` distinct failures."""
    report = FuzzReport(config=config)
    for index in range(config.budget):
        if len(report.failures) >= config.max_failures:
            break
        case = draw_case(config, index)
        instance = case.instance()
        engines = engines_for(config, case, index)
        report.cases += 1
        report.engine_case_runs += len(engines)
        for name, _spec in engines:
            report.pairs_covered.add((name, case.problem))

        runs = run_engines(engines, instance, case.eps)
        violations = cross_engine_violations(instance, runs)
        if violations:
            _record_failure(
                report, config, case, "cross_engine", index, violations
            )
            continue

        if config.metamorphic:
            rng = np.random.default_rng(
                [config.seed, int(case.fingerprint(), 16) % 2**31]
            )
            violations = metamorphic_violations(
                _metamorphic_engines(engines),
                instance,
                case.eps,
                rng=rng,
                base_runs={run.name: run for run in runs},
            )
            if violations:
                _record_failure(
                    report, config, case, "metamorphic", index, violations
                )
                continue

        if config.service and index % config.service_every == 0:
            engine = _service_engine(
                engines, config, _case_rng(config.seed, index)
            )
            if engine is not None:
                violations = service_equivalence_violations(
                    instance, engine, case.eps
                )
                if violations:
                    _record_failure(
                        report, config, case, "service", index, violations
                    )
    return report


def replay_case(
    case: ReproCase,
    *,
    oracle: str | None = None,
    config: FuzzConfig | None = None,
) -> list[Violation]:
    """Re-run the oracles on a recorded case; empty list = the failure
    no longer reproduces.  *oracle* restricts to one class (the one the
    repro file names); ``None`` runs all three."""
    if config is None:
        config = FuzzConfig(
            corpus_dir="qa-corpus",
            engines=tuple(
                name for name in case.engines if name in available_engines()
            ),
            eps=case.eps,
        )
    names = ORACLES if oracle is None else (oracle,)
    violations: list[Violation] = []
    for name in names:
        # index=0 keeps every cost-gated engine eligible on replay.
        violations.extend(_case_violations(config, case, name, 0))
    return violations


def replay_file(
    path: str | Path, *, all_oracles: bool = False
) -> tuple[dict, list[Violation]]:
    """Replay one corpus file: load it, re-run the recorded oracle class
    (or all of them with *all_oracles*), and return ``(record,
    violations)``."""
    from repro.qa.corpus import load_repro

    record = load_repro(path)
    case: ReproCase = record["case"]
    oracle = None if all_oracles else record.get("oracle")
    return record, replay_case(case, oracle=oracle)
