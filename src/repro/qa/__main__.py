"""``python -m repro.qa`` — module-form alias for ``repro-pcmax qa``.

Delegates to the main CLI so the fuzz/replay surface exists exactly
once; ``python -m repro.qa fuzz --seed 0 --budget 50`` and
``repro-pcmax qa fuzz --seed 0 --budget 50`` are the same program.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["qa", *sys.argv[1:]]))
