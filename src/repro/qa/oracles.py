"""The three oracle classes of the differential fuzzing harness.

Hand-written tests encode *expected outputs*; these oracles encode
*relations that must hold between outputs*, so they keep working on
instances nobody anticipated:

1. **Cross-engine agreement** (:func:`cross_engine_violations`) — every
   schedule verifies via :func:`repro.model.verify.verify_schedule`,
   exact engines agree with each other on the optimum, and approximate
   engines respect their registry-declared guarantee against the best
   exact reference (or, failing one, against the best makespan any
   engine achieved — a valid upper bound on OPT).
2. **Metamorphic invariants** (:func:`metamorphic_violations`) —
   permuting jobs (and machines) never changes the makespan of a
   multiset-deterministic engine, uniformly scaling all times scales the
   makespan exactly for scale-equivariant engines, a unit-speed
   ``q_cmax`` run collapses byte-for-byte onto the ``p_cmax`` path, and
   an extra (zero-load) machine never raises an exact engine's optimum.
3. **Service-path equivalence** (:func:`service_equivalence_violations`)
   — a solve through the JSON-lines wire protocol byte-matches the
   in-process facade result once both are reduced to the canonical
   fingerprint of :func:`repro.service.cache.canonicalize_result`.

Each function returns a list of :class:`Violation` records (empty =
clean) rather than raising, so the fuzzer can collect, minimize, and
persist every failure it finds.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Sequence

from repro.model.instance import Instance
from repro.model.problem import Q_CMAX, problem_of_instance
from repro.model.qinstance import QInstance
from repro.model.verify import verify_schedule
from repro.service.registry import EngineSpec
from repro.service.requests import SolveRequest

#: Engines whose result legitimately depends on the *order* of the job
#: vector, and so are exempt from the permutation-invariance oracle:
#: plain Graham list scheduling processes jobs as given, and the PTAS
#: family maps rounded grid buckets back to original jobs in input
#: order — two jobs sharing a bucket (say times 92 and 94 at eps=0.3)
#: can swap machines under permutation, moving the true makespan within
#: the guarantee band.  The fuzzer found the PTAS case on its first
#: smoke run (minimized: times (92, 87, 94), m=2 → 181 vs 179).
ORDER_SENSITIVE = frozenset({"ls", "ptas", "parallel_ptas"})

#: Approximate engines whose makespan provably scales exactly with a
#: uniform integer scaling of the processing times (greedy placement is
#: scale-equivariant; the PTAS/MULTIFIT rounding boundaries are not).
SCALE_EQUIVARIANT_APPROX = frozenset({"lpt", "ls"})

#: Relative slack for float comparisons (``q_cmax`` makespans surface
#: exact Fractions as floats; products of floats can wobble one ulp).
REL_TOL = 1e-9


@dataclass(frozen=True)
class Violation:
    """One oracle violation: which oracle class, which concrete check,
    which engine, and a human-readable account."""

    oracle: str
    check: str
    engine: str
    message: str

    def __str__(self) -> str:
        return f"[{self.oracle}/{self.check}] {self.engine}: {self.message}"


@dataclass(frozen=True)
class EngineRun:
    """Outcome of one engine on one instance: the schedule and makespan,
    or the error message when the engine raised."""

    name: str
    exact: bool
    guarantee: float
    makespan: float | None = None
    schedule: object | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        """True iff the engine produced a schedule."""
        return self.error is None


def build_request(
    instance: Instance | QInstance, engine: str, eps: float
) -> SolveRequest:
    """The :class:`SolveRequest` the harness uses for *instance*: the
    deterministic single-worker configuration (``numpy-serial``
    wavefront backend) so reruns and the service path are bit-stable."""
    is_q = isinstance(instance, QInstance)
    return SolveRequest(
        times=instance.processing_times,
        machines=instance.num_machines,
        problem=problem_of_instance(instance),
        speeds=instance.speeds if is_q else (),
        engine=engine,
        eps=eps,
        workers=1,
        backend="numpy-serial",
        mode="wavefront",
    )


def run_engine(
    name: str, spec: EngineSpec, instance: Instance | QInstance, eps: float
) -> EngineRun:
    """Run one engine on *instance*, capturing any exception as an
    :class:`EngineRun` error instead of letting it escape — an engine
    crash on a valid instance is itself an oracle violation."""
    request = build_request(instance, name, eps)
    try:
        schedule = spec.solve(instance, request, None)
    except Exception as exc:  # noqa: BLE001 - the whole point is capture
        return EngineRun(
            name=name,
            exact=spec.exact,
            guarantee=spec.guarantee(request),
            error=f"{type(exc).__name__}: {exc}",
        )
    return EngineRun(
        name=name,
        exact=spec.exact,
        guarantee=spec.guarantee(request),
        makespan=schedule.makespan,
        schedule=schedule,
    )


def run_engines(
    engines: Sequence[tuple[str, EngineSpec]],
    instance: Instance | QInstance,
    eps: float,
) -> list[EngineRun]:
    """Run every (name, spec) pair on *instance*."""
    return [run_engine(name, spec, instance, eps) for name, spec in engines]


def q_opt_exact(
    instance: QInstance, *, max_states: int = 2_000_000
) -> Fraction | None:
    """Exact ``Q || Cmax`` optimum as a :class:`~fractions.Fraction`, by
    pruned depth-first enumeration — the reference the uniform-machine
    guarantee checks need, since no registry engine solves ``q_cmax``
    exactly.  Returns ``None`` when the state budget runs out (the
    caller simply skips the check)."""
    t = instance.processing_times
    s = instance.speeds
    n, m = instance.num_jobs, instance.num_machines
    order = instance.sorted_jobs_desc()
    loads = [0] * m
    best: list[Fraction | None] = [None]
    states = [0]

    def span() -> Fraction:
        return max(Fraction(loads[i], s[i]) for i in range(m))

    def dfs(pos: int) -> bool:
        states[0] += 1
        if states[0] > max_states:
            return False
        current = span()
        if best[0] is not None and current >= best[0]:
            return True
        if pos == n:
            best[0] = current
            return True
        j = order[pos]
        seen: set[tuple[int, int]] = set()
        for i in range(m):
            key = (s[i], loads[i])
            if key in seen:
                continue  # same speed and load: interchangeable machines
            seen.add(key)
            loads[i] += t[j]
            ok = dfs(pos + 1)
            loads[i] -= t[j]
            if not ok:
                return False
        return True

    completed = dfs(0)
    return best[0] if completed else None


def _guarantee_reference(
    instance: Instance | QInstance,
    runs: Sequence[EngineRun],
    *,
    q_opt_max_states: int = 2_000_000,
) -> tuple[float | None, str]:
    """The best available stand-in for OPT: the exact engines' agreed
    makespan when any ran, else (small ``q_cmax``) the Fraction
    brute-force optimum, else the best makespan any engine achieved —
    an upper bound on OPT, so ``makespan <= g * ref`` stays a sound
    (if weaker) implication of ``makespan <= g * OPT``."""
    exact = [r.makespan for r in runs if r.ok and r.exact]
    if exact:
        return min(exact), "exact optimum"
    if isinstance(instance, QInstance) and instance.num_jobs <= 10:
        opt = q_opt_exact(instance, max_states=q_opt_max_states)
        if opt is not None:
            return float(opt), "brute-force Q optimum"
    achieved = [r.makespan for r in runs if r.ok]
    if achieved:
        return min(achieved), "best achieved makespan (upper bound on OPT)"
    return None, "no reference"


def cross_engine_violations(
    instance: Instance | QInstance,
    runs: Sequence[EngineRun],
    *,
    q_opt_max_states: int = 2_000_000,
) -> list[Violation]:
    """Oracle class 1: verification, exact agreement, and guarantees.

    Checks, in order: no engine raised; every returned schedule passes
    the semantic verifier; all exact engines report the same makespan;
    every engine's makespan respects its declared a-priori guarantee
    against the best exact (or lower-bound) reference available.
    """
    violations: list[Violation] = []
    for run in runs:
        if not run.ok:
            violations.append(
                Violation(
                    "cross_engine", "error", run.name,
                    f"engine raised on a valid instance: {run.error}",
                )
            )
            continue
        report = verify_schedule(run.schedule, instance)
        for problem in report.violations:
            violations.append(
                Violation("cross_engine", "verify", run.name, problem)
            )

    exact_runs = [r for r in runs if r.ok and r.exact]
    if len({r.makespan for r in exact_runs}) > 1:
        detail = ", ".join(
            f"{r.name}={r.makespan}" for r in sorted(
                exact_runs, key=lambda r: r.name
            )
        )
        for run in exact_runs:
            violations.append(
                Violation(
                    "cross_engine", "exact_disagreement", run.name,
                    f"exact engines disagree: {detail}",
                )
            )

    ref, ref_kind = _guarantee_reference(
        instance, runs, q_opt_max_states=q_opt_max_states
    )
    if ref is not None and ref > 0:
        for run in runs:
            if not run.ok:
                continue
            bound = run.guarantee * ref
            if run.makespan > bound * (1.0 + REL_TOL) + REL_TOL:
                violations.append(
                    Violation(
                        "cross_engine", "guarantee", run.name,
                        f"makespan {run.makespan} exceeds declared "
                        f"guarantee {run.guarantee:.6g} x {ref} "
                        f"({ref_kind}) = {bound:.6g}",
                    )
                )
    return violations


def _close(a: float, b: float) -> bool:
    """Equality up to :data:`REL_TOL` (exact for ints)."""
    if a == b:
        return True
    scale = max(abs(a), abs(b), 1.0)
    return abs(a - b) <= REL_TOL * scale


def metamorphic_violations(
    engines: Sequence[tuple[str, EngineSpec]],
    instance: Instance | QInstance,
    eps: float,
    *,
    rng,
    base_runs: Mapping[str, EngineRun] | None = None,
) -> list[Violation]:
    """Oracle class 2: metamorphic invariants.

    For each engine (skipping inapplicable ones per invariant):

    * *permutation* — shuffling the job vector leaves the makespan
      unchanged for every engine that is a function of the instance
      multiset (all but the :data:`ORDER_SENSITIVE` set);
    * *machine_permutation* — shuffling the ``q_cmax`` speed vector
      leaves the *optimum* unchanged (exact engines only: greedy ECT
      tie-breaking is machine-order dependent);
    * *scaling* — multiplying every time by an integer ``c`` multiplies
      the makespan by exactly ``c`` for exact and greedy engines;
    * *unit_speed_collapse* — engines that solve both variants must
      produce the identical makespan **and assignment** for a ``P``
      instance and its all-speeds-1 ``Q`` lift;
    * *extra_machine* — an additional (empty) machine never raises an
      exact engine's optimum.

    *rng* is a :class:`numpy.random.Generator`; the fuzzer derives it
    from the case seed so every transformation is replayable.
    """
    violations: list[Violation] = []
    is_q = isinstance(instance, QInstance)
    times = instance.processing_times
    n = len(times)

    if base_runs is None:
        base_runs = {
            run.name: run for run in run_engines(engines, instance, eps)
        }

    job_perm = [int(i) for i in rng.permutation(n)]
    permuted_times = tuple(times[i] for i in job_perm)
    machine_permuted: Instance | QInstance | None = None
    if is_q:
        # Jobs-only permutation for everyone: shuffling the *speed*
        # vector is only invariant for exact engines — greedy ECT
        # heuristics (Q-LPT) break completion-time ties by machine
        # index, so a speed shuffle can legitimately move the makespan
        # within the guarantee band.
        permuted: Instance | QInstance = QInstance(
            permuted_times, instance.speeds
        )
        machine_perm = [int(i) for i in rng.permutation(instance.num_machines)]
        machine_permuted = QInstance(
            times, tuple(instance.speeds[i] for i in machine_perm)
        )
        scaled: Instance | QInstance = QInstance(
            tuple(3 * t for t in times), instance.speeds
        )
    else:
        permuted = Instance(permuted_times, instance.num_machines)
        scaled = Instance(
            tuple(3 * t for t in times), instance.num_machines
        )

    for name, spec in engines:
        base = base_runs.get(name)
        if base is None or not base.ok:
            continue

        if name not in ORDER_SENSITIVE:
            run = run_engine(name, spec, permuted, eps)
            if not run.ok:
                violations.append(
                    Violation(
                        "metamorphic", "permutation", name,
                        f"engine raised on a permuted twin: {run.error}",
                    )
                )
            elif not _close(run.makespan, base.makespan):
                violations.append(
                    Violation(
                        "metamorphic", "permutation", name,
                        f"permuting the instance changed the makespan: "
                        f"{base.makespan} -> {run.makespan}",
                    )
                )

        if spec.exact and machine_permuted is not None:
            run = run_engine(name, spec, machine_permuted, eps)
            if not run.ok:
                violations.append(
                    Violation(
                        "metamorphic", "machine_permutation", name,
                        f"engine raised on a machine-permuted twin: "
                        f"{run.error}",
                    )
                )
            elif not _close(run.makespan, base.makespan):
                violations.append(
                    Violation(
                        "metamorphic", "machine_permutation", name,
                        f"permuting the machines changed the optimum: "
                        f"{base.makespan} -> {run.makespan}",
                    )
                )

        if spec.exact or name in SCALE_EQUIVARIANT_APPROX:
            run = run_engine(name, spec, scaled, eps)
            if not run.ok:
                violations.append(
                    Violation(
                        "metamorphic", "scaling", name,
                        f"engine raised on a scaled twin: {run.error}",
                    )
                )
            elif not _close(run.makespan, 3 * base.makespan):
                violations.append(
                    Violation(
                        "metamorphic", "scaling", name,
                        f"scaling times x3 scaled the makespan "
                        f"{base.makespan} -> {run.makespan} (expected "
                        f"{3 * base.makespan})",
                    )
                )

        if not is_q and Q_CMAX in spec.problems:
            lifted = QInstance.from_identical(instance)
            run = run_engine(name, spec, lifted, eps)
            if not run.ok:
                violations.append(
                    Violation(
                        "metamorphic", "unit_speed_collapse", name,
                        f"engine raised on the unit-speed lift: {run.error}",
                    )
                )
            elif (
                run.makespan != float(base.makespan)
                or run.schedule.assignment != base.schedule.assignment
            ):
                violations.append(
                    Violation(
                        "metamorphic", "unit_speed_collapse", name,
                        f"unit-speed q_cmax diverged from p_cmax: "
                        f"makespan {base.makespan} -> {run.makespan}, "
                        f"assignments "
                        f"{'equal' if run.schedule is not None and run.schedule.assignment == base.schedule.assignment else 'differ'}",
                    )
                )

        if spec.exact and not is_q:
            widened = Instance(times, instance.num_machines + 1)
            run = run_engine(name, spec, widened, eps)
            if not run.ok:
                violations.append(
                    Violation(
                        "metamorphic", "extra_machine", name,
                        f"engine raised with an extra machine: {run.error}",
                    )
                )
            elif run.makespan > base.makespan:
                violations.append(
                    Violation(
                        "metamorphic", "extra_machine", name,
                        f"adding a machine raised the optimum: "
                        f"{base.makespan} -> {run.makespan}",
                    )
                )
    return violations


def service_equivalence_violations(
    instance: Instance | QInstance,
    engine: str,
    eps: float,
    *,
    timeout: float = 60.0,
) -> list[Violation]:
    """Oracle class 3: the wire path equals the in-process path.

    Solves the same request twice — through
    :func:`repro.service.registry.solve_to_result` in-process, and
    through a real JSON-lines server on a loopback socket — and demands
    the two results serialize to identical bytes after
    :func:`repro.service.cache.canonicalize_result` strips the
    caller-specific fields (request id, elapsed, cached flag).

    *engine* must be a registry engine (the server resolves names
    itself, so scratch engines cannot ride this oracle).
    """
    import asyncio

    from repro.service.cache import canonicalize_result
    from repro.service.registry import solve_to_result
    from repro.service.server import SolveService, start_server, submit

    request = build_request(instance, engine, eps)
    try:
        inproc = solve_to_result(request)
    except Exception as exc:  # noqa: BLE001 - capture, don't crash the fuzzer
        return [
            Violation(
                "service", "error", engine,
                f"in-process solve raised: {type(exc).__name__}: {exc}",
            )
        ]

    async def round_trip():
        service = SolveService(max_workers=1)
        try:
            server = await start_server(service, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                return await submit("127.0.0.1", port, request, timeout=timeout)
            finally:
                server.close()
                await server.wait_closed()
        finally:
            await service.aclose()

    try:
        wire = asyncio.run(round_trip())
    except Exception as exc:  # noqa: BLE001
        return [
            Violation(
                "service", "error", engine,
                f"wire solve raised: {type(exc).__name__}: {exc}",
            )
        ]
    if not wire.ok:
        return [
            Violation(
                "service", "status", engine,
                f"wire solve answered status={wire.status!r}: {wire.error}",
            )
        ]
    canonical_inproc = canonicalize_result(request, inproc).to_json()
    canonical_wire = canonicalize_result(request, wire).to_json()
    if canonical_inproc != canonical_wire:
        return [
            Violation(
                "service", "fingerprint", engine,
                "wire result diverged from the in-process facade: "
                f"{canonical_wire} != {canonical_inproc}",
            )
        ]
    return []
