"""ddmin-style instance minimization for fuzzing finds.

A raw fuzzing failure is rarely a good bug report: a 12-job instance
with 3-digit times obscures the 4-job core that actually trips the
oracle.  :func:`shrink_case` drives a failure predicate to a (local)
minimum with four deterministic reduction passes, iterated to a
fixpoint:

1. **Job ddmin** — Zeller–Hildebrandt delta debugging over the job
   vector (:func:`ddmin`): drop progressively finer chunks while the
   failure persists.
2. **Machine reduction** — fewer machines (dropping one speed at a time
   for ``q_cmax``).
3. **Speed flattening** — each ``q_cmax`` speed individually toward 1.
4. **Time shrinking** — each processing time toward 1 (try 1, then
   repeated halving, then decrement).

The predicate is arbitrary — the fuzzer passes "the same oracle class
still reports a violation on this case" — so the reducer works for any
failure the harness can express.  Every pass only ever *shrinks* the
case, so termination is guaranteed.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

from repro.model.problem import Q_CMAX
from repro.qa.corpus import ReproCase

T = TypeVar("T")


def ddmin(
    items: Sequence[T], fails: Callable[[list[T]], bool]
) -> list[T]:
    """Classic delta debugging: a 1-minimal sublist of *items* on which
    *fails* still returns True.

    ``fails(list(items))`` must hold on entry; the result is 1-minimal
    in the ddmin sense (removing any single remaining chunk at the
    finest granularity no longer fails).

    >>> ddmin([1, 2, 3, 4, 5, 6], lambda xs: 4 in xs and 2 in xs)
    [2, 4]
    """
    current = list(items)
    granularity = 2
    while len(current) >= 2:
        chunk = -(-len(current) // granularity)  # ceil division
        chunks = [
            current[i : i + chunk] for i in range(0, len(current), chunk)
        ]
        reduced = False
        for index in range(len(chunks)):
            complement = [
                item
                for k, part in enumerate(chunks)
                if k != index
                for item in part
            ]
            if complement and fails(complement):
                current = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), 2 * granularity)
    return current


def _shrunk_times(t: int) -> list[int]:
    """Candidate replacements for one processing time, most aggressive
    first: 1, then repeated halving, then the decrement."""
    candidates: list[int] = []
    if t > 1:
        candidates.append(1)
    half = t // 2
    while half > 1:
        candidates.append(half)
        half //= 2
    if t > 1:
        candidates.append(t - 1)
    # Deduplicate, preserving the aggressive-first order.
    seen: set[int] = set()
    ordered = []
    for c in candidates:
        if 1 <= c < t and c not in seen:
            seen.add(c)
            ordered.append(c)
    return ordered


def _reduce_jobs(
    case: ReproCase, fails: Callable[[ReproCase], bool]
) -> ReproCase:
    """Pass 1: ddmin over the job vector."""
    kept = ddmin(
        list(case.times),
        lambda times: bool(times)
        and fails(case.replaced(times=tuple(times))),
    )
    return case.replaced(times=tuple(kept))


def _reduce_machines(
    case: ReproCase, fails: Callable[[ReproCase], bool]
) -> ReproCase:
    """Pass 2: fewer machines while the failure persists."""
    while case.machines > 1:
        if case.problem == Q_CMAX:
            dropped = None
            for i in range(case.machines):
                speeds = case.speeds[:i] + case.speeds[i + 1 :]
                candidate = case.replaced(
                    machines=case.machines - 1, speeds=speeds
                )
                if fails(candidate):
                    dropped = candidate
                    break
            if dropped is None:
                break
            case = dropped
        else:
            candidate = case.replaced(machines=case.machines - 1)
            if not fails(candidate):
                break
            case = candidate
    return case


def _reduce_speeds(
    case: ReproCase, fails: Callable[[ReproCase], bool]
) -> ReproCase:
    """Pass 3: flatten each ``q_cmax`` speed toward 1."""
    if case.problem != Q_CMAX:
        return case
    for i in range(case.machines):
        for value in _shrunk_times(case.speeds[i]):
            speeds = (
                case.speeds[:i] + (value,) + case.speeds[i + 1 :]
            )
            candidate = case.replaced(speeds=speeds)
            if fails(candidate):
                case = candidate
                break
    return case


def _reduce_times(
    case: ReproCase, fails: Callable[[ReproCase], bool]
) -> ReproCase:
    """Pass 4: shrink each processing time toward 1."""
    for i in range(case.num_jobs):
        for value in _shrunk_times(case.times[i]):
            times = case.times[:i] + (value,) + case.times[i + 1 :]
            candidate = case.replaced(times=times)
            if fails(candidate):
                case = candidate
                break
    return case


def shrink_case(
    case: ReproCase,
    fails: Callable[[ReproCase], bool],
    *,
    max_rounds: int = 8,
) -> ReproCase:
    """Minimize *case* while ``fails(case)`` holds, iterating the four
    reduction passes to a fixpoint (bounded by *max_rounds*).

    Returns *case* unchanged when the failure does not reproduce on
    entry — the caller then records the original un-minimized case.
    """
    if not fails(case):
        return case
    for _ in range(max_rounds):
        before = case
        case = _reduce_jobs(case, fails)
        case = _reduce_machines(case, fails)
        case = _reduce_speeds(case, fails)
        case = _reduce_times(case, fails)
        if case == before:
            break
    return case
