"""Differential quality assurance: fuzzing the engine fleet against itself.

The :mod:`repro.qa` package turns the repo's redundancy — four exact
solvers, five approximation engines, two problem variants, two solve
paths — into an automated oracle.  A seeded fuzzer
(:mod:`repro.qa.fuzzer`) draws instances from the paper's workload
families and checks three relation classes (:mod:`repro.qa.oracles`):
cross-engine agreement, metamorphic invariants, and wire/in-process
service equivalence.  Failures are ddmin-minimized
(:mod:`repro.qa.reduce`) and written as replayable JSON repro files
(:mod:`repro.qa.corpus`).

Command line::

    repro-pcmax qa fuzz --seed 0 --budget 200
    repro-pcmax qa replay corpus/qa-cross_engine-<hash>.json
    python -m repro.qa fuzz ...      # same thing, module form

See ``docs/qa.md`` for the oracle catalogue and the
find → minimize → replay → fix workflow.
"""

from repro.qa.corpus import ReproCase, load_repro, write_repro
from repro.qa.fuzzer import (
    Failure,
    FuzzConfig,
    FuzzReport,
    draw_case,
    replay_case,
    replay_file,
    run_fuzz,
)
from repro.qa.oracles import (
    EngineRun,
    Violation,
    cross_engine_violations,
    metamorphic_violations,
    run_engine,
    run_engines,
    service_equivalence_violations,
)
from repro.qa.reduce import ddmin, shrink_case

__all__ = [
    "ReproCase",
    "load_repro",
    "write_repro",
    "FuzzConfig",
    "FuzzReport",
    "Failure",
    "draw_case",
    "run_fuzz",
    "replay_case",
    "replay_file",
    "Violation",
    "EngineRun",
    "run_engine",
    "run_engines",
    "cross_engine_violations",
    "metamorphic_violations",
    "service_equivalence_violations",
    "ddmin",
    "shrink_case",
]
