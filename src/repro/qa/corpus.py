"""Replayable repro files — the fuzzer's failure corpus.

Every oracle violation the fuzzer finds is persisted as one JSON file in
the corpus directory, carrying everything needed to re-run the exact
check later: the (minimized) instance, the engine set, the oracle class
that tripped, and the pre-minimization original.  The file name embeds a
content fingerprint so re-finding the same minimized failure is
idempotent::

    corpus/
      qa-cross_engine-3f2a9c01d4e5.json
      qa-metamorphic-81b0c2377aa2.json

``python -m repro.qa replay corpus/qa-....json`` re-runs the recorded
oracles and exits non-zero while the failure still reproduces — the
workflow for turning a fuzzing find into a fixed regression test.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Sequence

from repro.model.instance import Instance
from repro.model.problem import P_CMAX, Q_CMAX, canonical_problem_name
from repro.model.qinstance import QInstance

FORMAT_NAME = "repro-pcmax-qa-repro"
FORMAT_VERSION = 1


@dataclass(frozen=True)
class ReproCase:
    """One failing (or formerly failing) fuzz case: the instance
    coordinates plus the engine set the oracles ran with."""

    problem: str
    times: tuple[int, ...]
    machines: int
    speeds: tuple[int, ...] = ()
    eps: float = 0.3
    engines: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "problem", canonical_problem_name(self.problem)
        )
        object.__setattr__(self, "times", tuple(int(t) for t in self.times))
        object.__setattr__(self, "speeds", tuple(int(s) for s in self.speeds))
        object.__setattr__(self, "engines", tuple(self.engines))
        if self.problem == Q_CMAX and len(self.speeds) != self.machines:
            raise ValueError(
                f"q_cmax case needs one speed per machine "
                f"({self.machines} machines, {len(self.speeds)} speeds)"
            )
        if self.problem == P_CMAX and self.speeds:
            raise ValueError("p_cmax case does not take speeds")

    @property
    def num_jobs(self) -> int:
        """Number of jobs in the case."""
        return len(self.times)

    def instance(self) -> Instance | QInstance:
        """The validated instance this case describes."""
        if self.problem == Q_CMAX:
            return QInstance(self.times, self.speeds)
        return Instance(self.times, self.machines)

    def replaced(self, **changes: Any) -> "ReproCase":
        """A copy with the given fields replaced (``dataclasses.replace``
        with the class's validation re-run)."""
        return replace(self, **changes)

    def to_dict(self) -> dict:
        """JSON-safe dict form."""
        return {
            "problem": self.problem,
            "times": list(self.times),
            "machines": self.machines,
            "speeds": list(self.speeds),
            "eps": self.eps,
            "engines": list(self.engines),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ReproCase":
        """Inverse of :meth:`to_dict` (strict: unknown keys rejected)."""
        known = {"problem", "times", "machines", "speeds", "eps", "engines"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown repro-case fields: {sorted(unknown)}")
        return cls(
            problem=data["problem"],
            times=tuple(data["times"]),
            machines=int(data["machines"]),
            speeds=tuple(data.get("speeds", ())),
            eps=float(data.get("eps", 0.3)),
            engines=tuple(data.get("engines", ())),
        )

    def fingerprint(self) -> str:
        """Stable content hash (12 hex chars) of the case coordinates."""
        payload = json.dumps(self.to_dict(), sort_keys=True).encode()
        return hashlib.sha256(payload).hexdigest()[:12]


def write_repro(
    directory: str | Path,
    case: ReproCase,
    violations: Sequence[object],
    *,
    oracle: str,
    original: ReproCase | None = None,
    seed: int | None = None,
) -> Path:
    """Persist one failure as ``qa-<oracle>-<fingerprint>.json`` under
    *directory* (created if needed); returns the path written.

    *violations* may be :class:`~repro.qa.oracles.Violation` records or
    plain strings — they are stored stringified, for humans reading the
    corpus, and are not needed to replay."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    record = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "oracle": oracle,
        "case": case.to_dict(),
        "violations": [str(v) for v in violations],
        "original": original.to_dict() if original is not None else None,
        "seed": seed,
        "minimized": original is not None,
    }
    path = directory / f"qa-{oracle}-{case.fingerprint()}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def load_repro(path: str | Path) -> dict:
    """Load a repro file: returns the raw record with ``case`` (and
    ``original``, when present) parsed into :class:`ReproCase`.

    Raises ``ValueError`` on a file that is not a qa repro record.
    """
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or data.get("format") != FORMAT_NAME:
        raise ValueError(
            f"{path} is not a {FORMAT_NAME} file "
            f"(format={data.get('format')!r})"
            if isinstance(data, dict)
            else f"{path} is not a {FORMAT_NAME} file"
        )
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported {FORMAT_NAME} version {data.get('version')!r}; "
            f"this build reads version {FORMAT_VERSION}"
        )
    record = dict(data)
    record["case"] = ReproCase.from_dict(data["case"])
    record["original"] = (
        ReproCase.from_dict(data["original"])
        if data.get("original") is not None
        else None
    )
    return record
