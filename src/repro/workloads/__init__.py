"""Instance generators reproducing the paper's experimental workloads.

Section V-A defines six uniform families; :mod:`repro.workloads.families`
names them and :mod:`repro.workloads.generator` draws seeded instances:

=================  ======================================  =====================
family key         processing times                        role in the paper
=================  ======================================  =====================
``u_2m``           ``U(1, 2m-1)``                          machine-coupled sizes
``u_100``          ``U(1, 100)``                           mid-range sizes
``u_10``           ``U(1, 10)``                            small sizes
``u_10n``          ``U(1, 10n)``                           large, job-coupled
``lpt_adversarial`` ``U(m, 2m-1)`` with ``n = 2m+1``       LPT's worst case
``u_narrow``       ``U(95, 105)``                          narrow range
=================  ======================================  =====================

The first four families form the speedup experiments (Figs. 2–4, with
``m ∈ {10, 20}``, ``n ∈ {30, 50, 100}``, 20 instances per type); the last
two join them in the approximation-ratio studies (Tables II/III, Fig. 5).

For ``Q || Cmax`` workloads, :data:`SPEED_FAMILIES` supplies the machine
side (``unit``, ``u_1_4``, ``one_fast``, ``geometric``) and
:func:`make_qinstance` pairs any time family with a speed vector — the
times match :func:`make_instance` job for job at the same seed.
"""

from repro.workloads.families import (
    FAMILIES,
    SPEED_FAMILIES,
    Family,
    SpeedFamily,
    family,
    speed_family,
    speedup_families,
)
from repro.workloads.generator import (
    generate_batch,
    lpt_adversarial,
    make_instance,
    make_qinstance,
    uniform_instance,
)

__all__ = [
    "FAMILIES",
    "Family",
    "family",
    "speedup_families",
    "SPEED_FAMILIES",
    "SpeedFamily",
    "speed_family",
    "make_instance",
    "make_qinstance",
    "uniform_instance",
    "lpt_adversarial",
    "generate_batch",
]
