"""Named instance families of the paper's evaluation (§V-A)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class Family:
    """One instance family: a name, a label for reports, and the bounds
    of its uniform processing-time distribution as functions of (m, n).

    ``fixed_n`` overrides the requested job count (only the
    LPT-adversarial family pins ``n = 2m + 1``).
    """

    key: str
    label: str
    low: Callable[[int, int], int]
    high: Callable[[int, int], int]
    fixed_n: Callable[[int], int] | None = None

    def bounds(self, m: int, n: int) -> tuple[int, int]:
        """Inclusive (low, high) of the uniform distribution at (m, n)."""
        lo, hi = self.low(m, n), self.high(m, n)
        if lo < 1 or hi < lo:
            raise ValueError(
                f"family {self.key} produced invalid bounds ({lo}, {hi}) "
                f"for m={m}, n={n}"
            )
        return lo, hi

    def job_count(self, m: int, n: int) -> int:
        """Effective job count (families may pin ``n``, e.g. 2m+1)."""
        return self.fixed_n(m) if self.fixed_n is not None else n


FAMILIES: dict[str, Family] = {
    f.key: f
    for f in (
        Family("u_2m", "U(1, 2m-1)", lambda m, n: 1, lambda m, n: 2 * m - 1),
        Family("u_100", "U(1, 100)", lambda m, n: 1, lambda m, n: 100),
        Family("u_10", "U(1, 10)", lambda m, n: 1, lambda m, n: 10),
        Family("u_10n", "U(1, 10n)", lambda m, n: 1, lambda m, n: 10 * n),
        Family(
            "lpt_adversarial",
            "U(m, 2m-1), n=2m+1",
            lambda m, n: m,
            lambda m, n: 2 * m - 1,
            fixed_n=lambda m: 2 * m + 1,
        ),
        Family("u_narrow", "U(95, 105)", lambda m, n: 95, lambda m, n: 105),
    )
}

#: The four families of the speedup experiments (Figs. 2–4), in the
#: paper's plotting order.
SPEEDUP_FAMILY_KEYS = ("u_2m", "u_100", "u_10", "u_10n")


@dataclass(frozen=True)
class SpeedFamily:
    """A named machine-speed distribution for ``Q || Cmax`` workloads.

    The processing-time families above stay exactly as the paper defines
    them; a speed family supplies the *machine* side of a uniform-machine
    instance.  ``draw(m, rng)`` returns ``m`` positive integer speeds —
    deterministic families ignore ``rng``.
    """

    key: str
    label: str
    draw: Callable[[int, "object"], list[int]]


def _unit_speeds(m: int, rng: object) -> list[int]:
    return [1] * m


def _u_1_4_speeds(m: int, rng: object) -> list[int]:
    return [int(s) for s in rng.integers(1, 5, size=m)]  # type: ignore[attr-defined]


def _one_fast_speeds(m: int, rng: object) -> list[int]:
    # One machine 4x the rest: the classic regime where plain LPT's
    # identical-machine tie-breaking goes wrong and ECT ordering matters.
    return [4] + [1] * (m - 1)


def _geometric_speeds(m: int, rng: object) -> list[int]:
    # Speeds 1, 2, 4, ... capped at 8 — a wide but bounded spread.
    return [min(2**i, 8) for i in range(m)]


SPEED_FAMILIES: dict[str, SpeedFamily] = {
    f.key: f
    for f in (
        SpeedFamily("unit", "all speeds 1 (degenerates to P||Cmax)", _unit_speeds),
        SpeedFamily("u_1_4", "speeds U(1, 4)", _u_1_4_speeds),
        SpeedFamily("one_fast", "one 4x machine, rest speed 1", _one_fast_speeds),
        SpeedFamily("geometric", "speeds 1,2,4,8,8,... (capped)", _geometric_speeds),
    )
}


def speed_family(key: str) -> SpeedFamily:
    """Look up a speed family by key with a helpful error."""
    try:
        return SPEED_FAMILIES[key]
    except KeyError:
        raise ValueError(
            f"unknown speed family {key!r}; available: {sorted(SPEED_FAMILIES)}"
        ) from None


def family(key: str) -> Family:
    """Look up a family by key with a helpful error."""
    try:
        return FAMILIES[key]
    except KeyError:
        raise ValueError(
            f"unknown family {key!r}; available: {sorted(FAMILIES)}"
        ) from None


def speedup_families() -> list[Family]:
    """The Figs. 2–4 families, in order."""
    return [FAMILIES[k] for k in SPEEDUP_FAMILY_KEYS]
