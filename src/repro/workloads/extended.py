"""Extended workload families beyond the paper's uniform distributions.

The paper's future-work section proposes studying the algorithm more
broadly; these generators supply the distributions practitioners most
often see, all integerized and truncated to stay within the model's
positive-integer processing times:

* :func:`normal_instance` — bell-shaped durations (services with a
  typical runtime and jitter);
* :func:`bimodal_instance` — a short/long mix (interactive + batch), the
  regime where LPT-style greediness is most brittle;
* :func:`exponential_instance` — heavy-ish tail (memoryless service
  times), producing a few dominant jobs;
* :func:`zipf_instance` — genuinely heavy tail with occasional huge jobs
  (the ``max t`` term of Eq. 1 dominates, making instances easy for the
  bounds but hard for balance).
"""

from __future__ import annotations

import numpy as np

from repro.model.instance import Instance


def _finalize(raw: np.ndarray, low: int, high: int | None) -> list[int]:
    times = np.rint(raw).astype(np.int64)
    times = np.maximum(times, low)
    if high is not None:
        times = np.minimum(times, high)
    return [int(t) for t in times]


def normal_instance(
    m: int,
    n: int,
    mean: float = 100.0,
    std: float = 20.0,
    seed: int | None = None,
) -> Instance:
    """Durations ~ round(N(mean, std)), clipped below at 1."""
    if mean <= 0 or std < 0:
        raise ValueError("mean must be positive and std non-negative")
    rng = np.random.default_rng(seed)
    return Instance(_finalize(rng.normal(mean, std, size=n), 1, None), m)


def bimodal_instance(
    m: int,
    n: int,
    short_mean: float = 10.0,
    long_mean: float = 200.0,
    long_fraction: float = 0.2,
    seed: int | None = None,
) -> Instance:
    """A mix of short and long jobs (each mode ~ N(mean, mean/5))."""
    if not 0.0 <= long_fraction <= 1.0:
        raise ValueError("long_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    is_long = rng.random(n) < long_fraction
    raw = np.where(
        is_long,
        rng.normal(long_mean, long_mean / 5.0, size=n),
        rng.normal(short_mean, short_mean / 5.0, size=n),
    )
    return Instance(_finalize(raw, 1, None), m)


def exponential_instance(
    m: int, n: int, mean: float = 50.0, seed: int | None = None
) -> Instance:
    """Durations ~ round(Exp(mean)), clipped below at 1."""
    if mean <= 0:
        raise ValueError("mean must be positive")
    rng = np.random.default_rng(seed)
    return Instance(_finalize(rng.exponential(mean, size=n), 1, None), m)


def zipf_instance(
    m: int,
    n: int,
    exponent: float = 2.0,
    cap: int = 10_000,
    seed: int | None = None,
) -> Instance:
    """Heavy-tailed durations ~ Zipf(exponent), capped to keep bounds
    finite."""
    if exponent <= 1.0:
        raise ValueError("zipf exponent must be > 1")
    if cap < 1:
        raise ValueError("cap must be >= 1")
    rng = np.random.default_rng(seed)
    return Instance(_finalize(rng.zipf(exponent, size=n).astype(float), 1, cap), m)


EXTENDED_GENERATORS = {
    "normal": normal_instance,
    "bimodal": bimodal_instance,
    "exponential": exponential_instance,
    "zipf": zipf_instance,
}
