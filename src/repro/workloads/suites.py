"""Named benchmark suites — reproducible instance collections.

The `P || Cmax` literature evaluates on fixed suites (uniform classes
over (m, n) grids).  A :class:`Suite` here is a named, seeded, fully
deterministic collection of instances that can be iterated, sized, and
referenced from benchmarks and papers-style reports:

* ``paper-speedup`` — the §V-A speedup grid (4 families × the paper's
  (m, n) pairs), the instances behind Figs. 2–4;
* ``paper-ratio`` — the ratio-study pool behind Tables II/III;
* ``smoke`` — a seconds-fast miniature of both;
* ``stress`` — larger instances for soak testing the optimized engines.

Each suite item carries its coordinates so results can always be traced
back to ``(suite, index)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.model.instance import Instance
from repro.workloads.generator import make_instance


@dataclass(frozen=True)
class SuiteItem:
    """One instance with its provenance coordinates."""

    suite: str
    index: int
    kind: str
    m: int
    n: int
    seed: int
    instance: Instance


@dataclass(frozen=True)
class Suite:
    """A named deterministic instance collection."""

    name: str
    description: str
    coordinates: tuple[tuple[str, int, int, int], ...]  # (kind, m, n, seed)

    def __len__(self) -> int:
        return len(self.coordinates)

    def __iter__(self) -> Iterator[SuiteItem]:
        for index, (kind, m, n, seed) in enumerate(self.coordinates):
            yield SuiteItem(
                suite=self.name,
                index=index,
                kind=kind,
                m=m,
                n=n,
                seed=seed,
                instance=make_instance(kind, m, n, seed=seed),
            )

    def item(self, index: int) -> SuiteItem:
        """Materialize a single suite entry by index."""
        kind, m, n, seed = self.coordinates[index]
        return SuiteItem(
            suite=self.name,
            index=index,
            kind=kind,
            m=m,
            n=n,
            seed=seed,
            instance=make_instance(kind, m, n, seed=seed),
        )


def _grid(
    kinds: tuple[str, ...],
    sizes: tuple[tuple[int, int], ...],
    replicates: int,
    seed_base: int,
) -> tuple[tuple[str, int, int, int], ...]:
    coords: list[tuple[str, int, int, int]] = []
    seed = seed_base
    for kind in kinds:
        for m, n in sizes:
            for _ in range(replicates):
                coords.append((kind, m, n, seed))
                seed += 1
    return tuple(coords)


SUITES: dict[str, Suite] = {
    "paper-speedup": Suite(
        "paper-speedup",
        "the §V-A speedup grid (Figs. 2-4): 4 families x 3 sizes x 20",
        _grid(
            ("u_2m", "u_100", "u_10", "u_10n"),
            ((20, 100), (10, 50), (10, 30)),
            replicates=20,
            seed_base=10_000,
        ),
    ),
    "paper-ratio": Suite(
        "paper-ratio",
        "the Tables II/III ratio pool incl. adversarial + narrow families",
        _grid(
            ("u_2m", "u_100", "u_10", "u_10n", "lpt_adversarial", "u_narrow"),
            ((10, 30), (10, 50)),
            replicates=5,
            seed_base=20_000,
        ),
    ),
    "smoke": Suite(
        "smoke",
        "seconds-fast miniature for CI",
        _grid(
            ("u_2m", "u_100", "u_10", "u_10n"),
            ((4, 12),),
            replicates=2,
            seed_base=30_000,
        ),
    ),
    "stress": Suite(
        "stress",
        "larger instances for soaking the optimized engines",
        _grid(
            ("u_100", "u_10n"),
            ((20, 200), (30, 150)),
            replicates=3,
            seed_base=40_000,
        ),
    ),
}


def suite(name: str) -> Suite:
    """Look up a suite by name with a helpful error."""
    try:
        return SUITES[name]
    except KeyError:
        raise ValueError(
            f"unknown suite {name!r}; available: {sorted(SUITES)}"
        ) from None
