"""Seeded instance generation.

All randomness flows through :class:`numpy.random.Generator` seeded with
``numpy.random.default_rng(seed)``, so every experiment in the harness is
reproducible from its (family, m, n, seed) coordinates alone.  Seeds for
the i-th replicate of a batch are derived as ``seed + i`` — simple, and
stable across library versions.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.model.instance import Instance
from repro.model.qinstance import QInstance
from repro.workloads.families import Family, family
from repro.workloads.families import speed_family as _speed_family_lookup


def uniform_instance(
    m: int, n: int, low: int, high: int, seed: int | None = None
) -> Instance:
    """``n`` jobs with integer times drawn from ``U(low, high)``
    (inclusive bounds, as in the paper's notation).

    >>> inst = uniform_instance(4, 10, 1, 100, seed=0)
    >>> inst.num_jobs, inst.num_machines
    (10, 4)
    >>> all(1 <= t <= 100 for t in inst.processing_times)
    True
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if low < 1:
        raise ValueError(f"low must be >= 1 (positive integer times), got {low}")
    if high < low:
        raise ValueError(f"high ({high}) must be >= low ({low})")
    rng = np.random.default_rng(seed)
    times = rng.integers(low, high + 1, size=n)
    return Instance([int(t) for t in times], m)


def make_instance(kind: str, m: int, n: int, seed: int | None = None) -> Instance:
    """Draw one instance of a named family (see
    :data:`repro.workloads.families.FAMILIES`).

    ``n`` is ignored for families with a pinned job count
    (``lpt_adversarial`` forces ``n = 2m + 1``).
    """
    fam = family(kind)
    low, high = fam.bounds(m, n)
    return uniform_instance(m, fam.job_count(m, n), low, high, seed=seed)


def make_qinstance(
    kind: str,
    m: int,
    n: int,
    seed: int | None = None,
    *,
    speeds: tuple[int, ...] | list[int] | None = None,
    speed_family: str | None = None,
) -> QInstance:
    """Draw one ``Q || Cmax`` instance: processing times from the named
    time family *kind*, machine speeds either given explicitly
    (*speeds* — also fixes the machine count) or drawn from a named
    :data:`~repro.workloads.families.SPEED_FAMILIES` entry
    (*speed_family*, default ``u_1_4``).

    Times and speeds are drawn from independent streams of the same
    seed (``seed`` and ``seed + 1``), so the times of
    ``make_qinstance(kind, m, n, seed)`` match
    ``make_instance(kind, m, n, seed)`` job for job.

    >>> q = make_qinstance("u_10", 3, 8, seed=0, speeds=(2, 1, 1))
    >>> q.num_machines, q.num_jobs
    (3, 8)
    >>> q.processing_times == make_instance("u_10", 3, 8, seed=0).processing_times
    True
    """
    if speeds is not None and speed_family is not None:
        raise ValueError("pass speeds= or speed_family=, not both")
    if speeds is not None:
        m = len(speeds)
        chosen = [int(s) for s in speeds]
    else:
        fam = _speed_family_lookup(speed_family or "u_1_4")
        rng = np.random.default_rng(None if seed is None else seed + 1)
        chosen = fam.draw(m, rng)
    inst = make_instance(kind, m, n, seed=seed)
    return QInstance(inst.processing_times, chosen)


def lpt_adversarial(m: int, seed: int | None = None) -> Instance:
    """The near-worst-case family for LPT: ``n = 2m + 1`` jobs from
    ``U(m, 2m-1)`` (paper §V-B).  Deterministic worst cases exist
    (``2m+1`` jobs of sizes ``2m-1, 2m-1, 2m-2, ..., m, m, m``); the
    random family gets close while matching the paper's setup."""
    return make_instance("lpt_adversarial", m, 2 * m + 1, seed=seed)


def lpt_worst_case_exact(m: int) -> Instance:
    """Graham's deterministic tight example for LPT: jobs
    ``2m-1, 2m-1, 2m-2, 2m-2, ..., m+1, m+1, m, m, m`` on ``m`` machines.
    LPT yields ``4m - 1`` while the optimum is ``3m``.

    >>> from repro.algorithms.lpt import lpt
    >>> inst = lpt_worst_case_exact(3)
    >>> lpt(inst).makespan, 3 * 3
    (11, 9)
    """
    if m < 2:
        raise ValueError("the construction needs m >= 2")
    times: list[int] = []
    for v in range(2 * m - 1, m, -1):
        times.extend([v, v])
    times.extend([m, m, m])
    return Instance(times, m)


def generate_batch(
    kind: str, m: int, n: int, count: int, base_seed: int = 0
) -> Iterator[Instance]:
    """Yield ``count`` replicates of a family with derived seeds
    (``base_seed + i``) — the "20 instances per type" of §V-A."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    for i in range(count):
        yield make_instance(kind, m, n, seed=base_seed + i)


def family_of_types(
    machine_counts: tuple[int, ...] = (10, 20),
    job_counts: tuple[int, ...] = (30, 50, 100),
    kinds: tuple[str, ...] = ("u_2m", "u_100", "u_10", "u_10n"),
) -> list[tuple[str, int, int]]:
    """The cartesian grid of instance *types* of §V-A — 24 by default
    (2 machine counts x 3 job counts x 4 distributions)."""
    return [(kind, m, n) for m in machine_counts for n in job_counts for kind in kinds]
