"""Command-line interface: ``repro-pcmax`` (or ``python -m repro``).

Subcommands
-----------
``solve``
    Solve one instance (from ``--times`` or a generated family) with any
    algorithm in the library and print the schedule and makespan.
``generate``
    Print the processing times of a generated instance (for piping into
    other tools).
``figure``
    Regenerate one of the paper's figures (2, 3, 4, 5) at smoke or paper
    scale and print the panels.
``table``
    Regenerate Table I, II or III.
``bench-dp``
    Compare the DP engines on one generated instance (the ablation of
    DESIGN.md §7) — handy for quick profiling.
``serve`` / ``submit``
    Run the asyncio scheduling service (``docs/service.md``) and submit
    requests to it over the JSON-lines protocol.  ``serve --store DIR``
    adds the durable result store and write-ahead journal
    (``docs/persistence.md``) with crash recovery on startup;
    ``serve --pool-workers N`` serves solves from a sharded pool of N
    worker processes (``docs/scaling.md``); ``submit --repeat N
    --concurrency C`` replays a request for throughput measurement.
``store``
    Operate on a store directory offline: ``stats``, ``verify``
    (checksum + schedule audit, quarantining corrupt segments),
    ``compact``, and ``replay`` (drain the journal's uncommitted
    entries without starting the server).
``qa``
    Differential fuzzing of the engine fleet (``docs/qa.md``): ``fuzz``
    draws seeded instances and checks the cross-engine, metamorphic and
    service-equivalence oracles, minimizing and persisting any failure;
    ``replay`` re-runs recorded repro files.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.core.dp import SEQUENTIAL_ENGINES
from repro.core.ptas import MODES
from repro.model.instance import Instance
from repro.model.problem import P_CMAX, Q_CMAX, available_problems, canonical_problem_name
from repro.model.qinstance import QInstance
from repro.parallel.cpus import resolve_workers
from repro.service.registry import (
    UnknownEngineError,
    available_engines,
    build_solve_context,
    get_engine,
)
from repro.service.requests import SolveRequest
from repro.workloads.families import FAMILIES, SPEED_FAMILIES
from repro.workloads.generator import make_instance, make_qinstance

#: Engine names come from the service registry — the single source of
#: truth shared with ``repro.service.server`` (dashes == underscores, so
#: the historical ``parallel-ptas`` spelling keeps working).
ALGORITHMS = available_engines()


def _problem_from_args(args: argparse.Namespace) -> str:
    return canonical_problem_name(getattr(args, "problem", P_CMAX))


def _speeds_from_args(args: argparse.Namespace) -> tuple[int, ...]:
    raw = getattr(args, "speeds", None)
    if not raw:
        return ()
    return tuple(int(x) for x in raw.split(","))


def _qinstance_from_args(args: argparse.Namespace) -> QInstance:
    speeds = _speeds_from_args(args)
    if args.times:
        if not speeds:
            raise SystemExit(
                "q_cmax needs machine speeds: pass --speeds S1,S2,... "
                "alongside --times"
            )
        times = [int(x) for x in args.times.split(",")]
        return QInstance(times, speeds)
    if args.family:
        return make_qinstance(
            args.family,
            args.machines,
            args.jobs,
            seed=args.seed,
            speeds=speeds or None,
            speed_family=getattr(args, "speed_family", None),
        )
    raise SystemExit("provide --times (with --speeds) or --family")


def _instance_from_args(args: argparse.Namespace) -> Instance | QInstance:
    if _problem_from_args(args) == Q_CMAX:
        return _qinstance_from_args(args)
    if getattr(args, "input", None):
        from repro.io.instances import read_instance

        return read_instance(args.input)
    if args.times:
        times = [int(x) for x in args.times.split(",")]
        return Instance(times, args.machines)
    if args.family:
        return make_instance(args.family, args.machines, args.jobs, seed=args.seed)
    raise SystemExit("provide --times, --family, or --input")


def _add_instance_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--times", help="comma-separated processing times")
    sub.add_argument(
        "--family", choices=sorted(FAMILIES), help="generated instance family"
    )
    sub.add_argument(
        "--input", help="read the instance from a .json/.csv/.txt file"
    )
    sub.add_argument("-m", "--machines", type=int, default=10)
    sub.add_argument("-n", "--jobs", type=int, default=30)
    sub.add_argument("--seed", type=int, default=0)


def _add_problem_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--problem",
        default=P_CMAX,
        help=f"problem variant (one of: {', '.join(available_problems())}; "
        "aliases like 'q'/'uniform' are accepted)",
    )
    sub.add_argument(
        "--speeds",
        help="q_cmax: comma-separated positive integer machine speeds "
        "(defines the machine count)",
    )
    sub.add_argument(
        "--speed-family",
        choices=sorted(SPEED_FAMILIES),
        help="q_cmax with --family: generate the speed vector from a "
        "named speed family instead of --speeds",
    )


def _workers_arg(value: str) -> int | str:
    """argparse type for ``--workers``: a positive int or ``auto``
    (cgroup-aware CPU detection, :mod:`repro.parallel.cpus`)."""
    if value.strip().lower() == "auto":
        return "auto"
    try:
        workers = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {value!r}"
        ) from None
    if workers < 1:
        raise argparse.ArgumentTypeError(f"workers must be >= 1, got {workers}")
    return workers


def _pool_workers_arg(value: str) -> int | str:
    """argparse type for ``serve --pool-workers``: a non-negative int
    (0 = single-process service) or ``auto``."""
    if value.strip().lower() == "auto":
        return "auto"
    try:
        workers = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer or 'auto', got {value!r}"
        ) from None
    if workers < 0:
        raise argparse.ArgumentTypeError(
            f"pool workers must be >= 0, got {workers}"
        )
    return workers


def _solve_request_from_args(
    args: argparse.Namespace, inst: Instance | QInstance
) -> SolveRequest:
    is_q = isinstance(inst, QInstance)
    return SolveRequest(
        times=inst.processing_times,
        machines=inst.num_machines,
        problem=Q_CMAX if is_q else P_CMAX,
        speeds=inst.speeds if is_q else (),
        engine=args.algorithm,
        eps=args.eps,
        dp_engine=args.engine,
        workers=args.workers,
        backend=args.backend,
        mode=getattr(args, "mode", "wavefront"),
        time_limit=args.time_limit,
        deadline=getattr(args, "deadline", None),
    )


def _sniff_engine_flag(args: argparse.Namespace) -> None:
    """Accept ``--engine lpt`` as a registry engine name.

    ``--engine`` historically selects the sequential *DP* engine of the
    PTAS bisection, but ``--engine lpt`` reads naturally as "solve with
    LPT".  The two name sets are disjoint, so when the value matches a
    registry engine (and no explicit ``-a`` contradicts it) we treat it
    as the algorithm and fall back to the default DP engine.
    """
    name = args.engine.replace("-", "_").strip().lower()
    if name in SEQUENTIAL_ENGINES:
        return
    if name in ALGORITHMS:
        args.algorithm = name
        args.engine = "dominance"


def _build_trace_context(args: argparse.Namespace, request: SolveRequest):
    """Tracer + context for ``solve --trace`` (``(None, None)`` untraced)."""
    if not getattr(args, "trace", None):
        return None, None
    from repro.obs import SamplingProfiler, Tracer

    profiler = (
        SamplingProfiler(threshold=args.trace_profile)
        if getattr(args, "trace_profile", None) is not None
        else None
    )
    tracer = Tracer(profiler=profiler)
    return tracer, build_solve_context(request, tracer=tracer)


def _finish_trace(tracer, path: str) -> None:
    """Write the trace file and print the per-phase summary."""
    from repro.obs import save_trace

    save_trace(tracer, path)
    print(f"trace    : {path}")
    for kind, agg in sorted(
        tracer.phase_summary().items(), key=lambda kv: -kv[1]["seconds"]
    ):
        print(
            f"  phase {kind:11s} count={agg['count']:5d} "
            f"seconds={agg['seconds']:.4f}"
        )


def _cmd_solve(args: argparse.Namespace) -> int:
    _sniff_engine_flag(args)
    # Validate the DP engine eagerly so a typo exits cleanly regardless
    # of which algorithm would (or would not) consume it.
    if args.engine not in SEQUENTIAL_ENGINES:
        print(
            f"error: unknown DP engine {args.engine!r}; available: "
            f"{', '.join(sorted(SEQUENTIAL_ENGINES))}",
            file=sys.stderr,
        )
        return 2
    try:
        inst = _instance_from_args(args)
        request = _solve_request_from_args(args, inst)
        spec = get_engine(args.algorithm, problem=request.problem)
        tracer, ctx = _build_trace_context(args, request)
        t0 = time.perf_counter()
        schedule = spec.solve(inst, request, ctx)
    except UnknownEngineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - t0
    from repro.model.verify import verify_schedule

    report = verify_schedule(schedule, inst)
    print(f"instance : {inst}")
    print(f"problem  : {request.problem}")
    print(f"algorithm: {args.algorithm}")
    print(f"makespan : {schedule.makespan}")
    print(f"verified : {'ok' if report.ok else 'INVALID'}")
    print(f"time     : {elapsed:.4f}s")
    if not report.ok:
        for v in report.violations:
            print(f"  - {v}", file=sys.stderr)
        return 1
    if tracer is not None:
        _finish_trace(tracer, args.trace)
    if args.show_schedule:
        is_q = isinstance(inst, QInstance)
        completions = schedule.completion_times if is_q else None
        for i, grp in enumerate(schedule.assignment):
            load = sum(inst.processing_times[j] for j in grp)
            if is_q:
                print(
                    f"  machine {i:3d} (speed {inst.speeds[i]:3d}, "
                    f"load {load:6d}, completes {completions[i]:g}): "
                    f"jobs {list(grp)}"
                )
            else:
                print(f"  machine {i:3d} (load {load:6d}): jobs {list(grp)}")
    if args.gantt:
        from repro.model.gantt import render_gantt

        print(render_gantt(schedule))
    if args.output:
        from repro.io.schedules import write_schedule

        path = write_schedule(
            schedule, args.output, metadata={"algorithm": args.algorithm}
        )
        print(f"schedule written to {path}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    inst = make_instance(args.family, args.machines, args.jobs, seed=args.seed)
    print(",".join(str(t) for t in inst.processing_times))
    if args.output:
        from repro.io.instances import write_instance

        path = write_instance(
            inst, args.output, metadata={"family": args.family, "seed": args.seed}
        )
        print(f"instance written to {path}")
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    from repro.io.instances import read_instance, write_instance

    inst = read_instance(args.source)
    path = write_instance(inst, args.dest)
    print(f"converted {args.source} -> {path} ({inst})")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    if args.number == "1":
        from repro.core.depgraph import render_figure1
        from repro.experiments.tables import TABLE1_PROBLEM

        print(render_figure1(TABLE1_PROBLEM))
        return 0
    from repro.experiments import figures

    runner = {
        "2": figures.run_figure2,
        "3": figures.run_figure3,
        "4": figures.run_figure4,
        "5": figures.run_figure5,
    }[args.number]
    result = runner(scale=args.scale)
    print(result.render())
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.io.schedules import read_schedule
    from repro.model.verify import verify_schedule

    schedule = read_schedule(args.schedule)
    report = verify_schedule(schedule)
    if report.ok:
        print(
            f"OK: valid schedule, makespan {schedule.makespan}, "
            f"loads {schedule.machine_loads}"
        )
        return 0
    print(f"INVALID: {len(report.violations)} violation(s)")
    for v in report.violations:
        print(f"  - {v}")
    return 1


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.experiments import tables

    if args.number == "1":
        print(tables.run_table1().render())
    elif args.number == "2":
        print(tables.run_table2(scale=args.scale).render())
    else:
        print(tables.run_table3(scale=args.scale).render())
    return 0


def _cmd_bench_dp(args: argparse.Namespace) -> int:
    from repro.core.bounds import makespan_bounds
    from repro.core.dp import SEQUENTIAL_ENGINES, DPProblem, solve
    from repro.core.rounding import accuracy_parameter, round_instance

    inst = _instance_from_args(args)
    k = accuracy_parameter(args.eps)
    target = makespan_bounds(inst).midpoint()
    rounded = round_instance(inst, target, k)
    problem = DPProblem(rounded.class_sizes, rounded.class_counts, target)
    print(
        f"T={target} classes={rounded.num_classes} long={rounded.num_long_jobs} "
        f"sigma={problem.table_size}"
    )
    for engine in SEQUENTIAL_ENGINES:
        t0 = time.perf_counter()
        res = solve(problem, engine, track_schedule=False, collect_stats=True)
        dt = time.perf_counter() - t0
        assert res.stats is not None
        print(
            f"  {engine:10s} opt={res.opt} time={dt:.4f}s "
            f"states={res.stats.states_computed} scans={res.stats.config_scans}"
        )
    from repro.service.metrics import MetricsRegistry, record_dp_cache

    cache_stats = record_dp_cache(MetricsRegistry())
    print(
        "config-cache: "
        f"hits={cache_stats['hits']} misses={cache_stats['misses']} "
        f"currsize={cache_stats['currsize']}/{cache_stats['maxsize']}"
    )
    return 0


def _recover_store_offline(store_dir: str, store_ttl: float | None) -> None:
    """Replay every journal in *store_dir* (the supervisor's and any
    worker's) before the service starts accepting traffic."""
    from repro.store import ResultStore, recover_all

    store = ResultStore(store_dir, ttl=store_ttl)
    try:
        report = recover_all(store, store_dir)
    finally:
        store.close()
    if report.entries:
        print(report.render(), flush=True)
        for line in report.aborted:
            print(f"  aborted: {line}", flush=True)


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.admission import AdmissionController
    from repro.service.server import serve

    pool_workers = (
        resolve_workers(args.pool_workers)
        if args.pool_workers == "auto"
        else int(args.pool_workers)
    )
    if args.store:
        _recover_store_offline(args.store, args.store_ttl)
    if pool_workers >= 1:
        # Sharded multi-process pool (docs/scaling.md): N solver worker
        # processes behind the same JSON-lines front end.
        from repro.service.supervisor import PooledSolveService

        service = PooledSolveService(
            pool_workers,
            admission=AdmissionController(max_queue_depth=args.queue_depth),
            default_deadline=args.default_deadline,
            store_root=args.store,
            store_ttl=args.store_ttl,
            cache_size=args.cache_size,
            cache_ttl=args.cache_ttl,
            archive_traces=args.archive_traces,
        )
    else:
        from repro.service.cache import ResultCache
        from repro.service.server import SolveService

        store = journal = None
        if args.store:
            from repro.store import ResultStore, WriteAheadJournal

            store = ResultStore(args.store, ttl=args.store_ttl)
            journal = WriteAheadJournal(args.store)
        service = SolveService(
            max_workers=resolve_workers(args.workers),
            batch_window=args.batch_window,
            default_deadline=args.default_deadline,
            cache=ResultCache(
                max_entries=args.cache_size, ttl=args.cache_ttl, store=store
            ),
            admission=AdmissionController(max_queue_depth=args.queue_depth),
            store=store,
            journal=journal,
            archive_traces=args.archive_traces,
        )

    def ready(host: str, port: int) -> None:
        suffix = f" (pool: {pool_workers} workers)" if pool_workers >= 1 else ""
        print(f"repro service listening on {host}:{port}{suffix}", flush=True)

    try:
        asyncio.run(
            serve(
                args.host,
                args.port,
                service=service,
                log_interval=args.log_interval,
                on_ready=ready,
            )
        )
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_submit_repeat(args: argparse.Namespace) -> int:
    """``submit --repeat N [--concurrency C]``: replay N copies of the
    request (unique ``request_id``s, same instance) over C persistent
    connections, verify every returned schedule, and print throughput
    and latency percentiles.  A duplicate-heavy replay like this is the
    cheapest way to watch coalescing + shard caching work (expect one
    solve, N-1 cache hits in ``op=stats``)."""
    import asyncio
    import statistics

    from repro.model.verify import verify_schedule
    from repro.service.server import replay

    inst = _instance_from_args(args)
    base = _solve_request_from_args(args, inst)
    stem = base.request_id or "submit"
    requests = [
        SolveRequest.from_dict({**base.to_dict(), "request_id": f"{stem}-{i}"})
        for i in range(args.repeat)
    ]
    t0 = time.perf_counter()
    outcomes = asyncio.run(
        replay(
            args.host,
            args.port,
            requests,
            concurrency=args.concurrency,
            timeout=args.timeout,
        )
    )
    wall = time.perf_counter() - t0
    ok = degraded = cached = verified = failed = 0
    latencies: list[float] = []
    for result, latency in outcomes:
        latencies.append(latency)
        if not result.ok:
            failed += 1
            continue
        ok += 1
        degraded += int(result.degraded)
        cached += int(result.cached)
        if result.assignment is not None:
            report = verify_schedule(result.schedule(inst), inst)
            if report.ok:
                verified += 1
            else:
                failed += 1
                print(f"VERIFY FAILED: {report}", file=sys.stderr)
    latencies.sort()

    def pct(p: float) -> float:
        return latencies[min(len(latencies) - 1, int(p / 100 * len(latencies)))]

    print(f"requests   : {len(outcomes)}/{args.repeat}")
    print(f"seed       : {args.seed}")
    print(f"ok         : {ok} (verified {verified}, cached {cached}, degraded {degraded})")
    print(f"failed     : {failed}")
    print(f"wall       : {wall:.3f}s  ({len(outcomes) / wall:.1f} req/s)")
    if latencies:
        print(
            f"latency    : mean={statistics.mean(latencies) * 1e3:.2f}ms "
            f"p50={pct(50) * 1e3:.2f}ms p99={pct(99) * 1e3:.2f}ms"
        )
    return 0 if failed == 0 and len(outcomes) == args.repeat else 2


def _cmd_submit(args: argparse.Namespace) -> int:
    import asyncio
    import json as _json

    from repro.service.server import send_op, submit

    _sniff_engine_flag(args)
    if args.op:
        reply = asyncio.run(send_op(args.host, args.port, args.op))
        print(_json.dumps(reply, indent=2, sort_keys=True))
        if args.op == "healthcheck":
            return 0 if reply.get("ok") else 1
        return 0
    if args.repeat:
        return _cmd_submit_repeat(args)
    inst = _instance_from_args(args)
    request = _solve_request_from_args(args, inst)
    result = asyncio.run(
        submit(args.host, args.port, request, timeout=args.timeout)
    )
    if result.status == "rejected":
        print(
            f"rejected: {result.error} (retry after {result.retry_after:.2f}s)",
            file=sys.stderr,
        )
        return 3
    if not result.ok:
        print(f"error: {result.error}", file=sys.stderr)
        return 2
    print(f"instance : {inst}")
    print(f"engine   : {result.engine}")
    print(f"makespan : {result.makespan}")
    print(f"guarantee: {result.guarantee:.4f}")
    print(f"degraded : {result.degraded}")
    print(f"cached   : {result.cached}")
    if args.show_schedule and result.assignment is not None:
        for i, grp in enumerate(result.assignment):
            load = sum(inst.processing_times[j] for j in grp)
            print(f"  machine {i:3d} (load {load:6d}): jobs {list(grp)}")
    return 0


def _cmd_store_stats(args: argparse.Namespace) -> int:
    import json as _json

    from repro.store import ResultStore, WriteAheadJournal

    store = ResultStore(args.dir)
    payload = {"store": store.stats(), "journal": WriteAheadJournal(args.dir).stats()}
    store.close()
    print(_json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _cmd_store_verify(args: argparse.Namespace) -> int:
    from repro.store import ResultStore

    store = ResultStore(args.dir)
    report = store.verify(deep=not args.shallow)
    store.close()
    print(
        f"checked  : {report.segments_checked} segment(s), "
        f"{report.records_checked} record(s)"
    )
    if not args.shallow:
        print(f"verified : {report.schedules_verified} schedule(s)")
    if report.torn_tails:
        print(f"torn     : {report.torn_tails} crash-truncated tail(s) (tolerated)")
    if report.ok:
        print("OK: store is clean")
        return 0
    for name in report.quarantined:
        print(f"QUARANTINED: {name}")
    for violation in report.violations:
        print(f"  - {violation}")
    return 1


def _cmd_store_compact(args: argparse.Namespace) -> int:
    from repro.store import ResultStore

    store = ResultStore(args.dir, ttl=args.ttl)
    report = store.compact()
    store.close()
    print(
        f"compacted: {report.segments_before} -> {report.segments_after} "
        f"segment(s), {report.bytes_before} -> {report.bytes_after} bytes"
    )
    print(
        f"records  : {report.records_kept} kept, {report.records_dropped} "
        f"dropped ({report.expired_dropped} expired)"
    )
    return 0


def _cmd_store_replay(args: argparse.Namespace) -> int:
    from repro.store import ResultStore, recover_all

    store = ResultStore(args.dir)
    try:
        report = recover_all(store, args.dir)
    finally:
        store.close()
    print(report.render())
    for line in report.aborted:
        print(f"  aborted: {line}")
    return 0 if report.ok else 1


def _cmd_qa_fuzz(args: argparse.Namespace) -> int:
    from repro.qa import FuzzConfig, run_fuzz

    config = FuzzConfig(
        seed=args.seed,
        budget=args.budget,
        problem=args.problem,
        corpus_dir=args.corpus,
        eps=args.eps,
        max_jobs=args.max_jobs,
        max_machines=args.max_machines,
        max_failures=args.max_failures,
        engines=tuple(args.engines.split(",")) if args.engines else (),
        metamorphic=not args.no_metamorphic,
        service=not args.no_service,
    )
    report = run_fuzz(config)
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_qa_replay(args: argparse.Namespace) -> int:
    from repro.qa import replay_file

    exit_code = 0
    for path in args.files:
        record, violations = replay_file(path, all_oracles=args.all_oracles)
        case = record["case"]
        label = (
            f"{path}: {case.problem}, {case.num_jobs} jobs x "
            f"{case.machines} machines, oracle={record['oracle']}"
        )
        if violations:
            exit_code = 1
            print(f"STILL FAILING {label}")
            for violation in violations:
                print(f"  {violation}")
        else:
            print(f"clean {label}")
    return exit_code


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.experiments.reproduce import reproduce_all

    golden = args.golden or None
    run = reproduce_all(args.out, scale=args.scale, golden_path=golden)
    print(run.render())
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.campaign import run_campaign
    from repro.experiments.harness import ExperimentConfig
    from repro.workloads.generator import family_of_types

    if args.grid == "paper":
        grid = family_of_types()
    else:
        grid = []
        for triple in args.grid.split(","):
            kind, m, n = triple.split(":")
            grid.append((kind, int(m), int(n)))
    cores = tuple(int(c) for c in args.cores.split(","))
    config = ExperimentConfig(cores=cores, ip_time_limit=args.ip_time_limit)
    result = run_campaign(
        grid,
        instances_per_type=args.instances,
        config=config,
        base_seed=args.seed,
    )
    print(result.render())
    if args.csv_dir:
        from repro.experiments.manifest import build_manifest, write_manifest

        for path in result.export_csv(args.csv_dir):
            print(f"wrote {path}")
        manifest = build_manifest(
            experiment="campaign",
            grid=grid,
            instances_per_type=args.instances,
            base_seed=args.seed,
            config=config,
        )
        print(f"wrote {write_manifest(args.csv_dir, manifest)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-pcmax",
        description="Parallel approximation algorithms for P||Cmax "
        "(Ghalami & Grosu, IPPS 2017 reproduction)",
    )
    subs = parser.add_subparsers(dest="command", required=True)

    solve = subs.add_parser("solve", help="solve one instance")
    _add_instance_args(solve)
    _add_problem_args(solve)
    solve.add_argument(
        "-a",
        "--algorithm",
        default="parallel-ptas",
        help=f"engine name (one of: {', '.join(ALGORITHMS)}; "
        "dashes and underscores are interchangeable)",
    )
    solve.add_argument("--eps", type=float, default=0.3)
    solve.add_argument(
        "--engine",
        "--dp-engine",
        dest="engine",
        default="dominance",
        help="sequential DP engine for the PTAS bisection (one of: "
        f"{', '.join(sorted(SEQUENTIAL_ENGINES))})",
    )
    solve.add_argument(
        "--workers",
        type=_workers_arg,
        default="auto",
        help="worker count for parallel engines, or 'auto' (default) for "
        "cgroup-aware CPU detection",
    )
    solve.add_argument("--backend", default="serial")
    solve.add_argument(
        "--mode",
        choices=MODES,
        default="wavefront",
        help="parallel-ptas bisection mode: wavefront (all workers inside "
        "each DP), speculative (concurrent probe targets), or auto",
    )
    solve.add_argument("--time-limit", type=float, default=None)
    solve.add_argument(
        "--trace",
        metavar="FILE",
        help="record a hierarchical trace and write it as "
        "chrome://tracing JSON (docs/observability.md)",
    )
    solve.add_argument(
        "--trace-profile",
        type=float,
        metavar="SECONDS",
        default=None,
        help="with --trace: sample the solver's stack and attach hottest "
        "stacks to probes slower than SECONDS",
    )
    solve.add_argument("--show-schedule", action="store_true")
    solve.add_argument(
        "--gantt", action="store_true", help="render an ASCII Gantt chart"
    )
    solve.add_argument(
        "--output", help="write the schedule to a JSON file"
    )
    solve.set_defaults(fn=_cmd_solve)

    gen = subs.add_parser("generate", help="print a generated instance")
    gen.add_argument("--family", choices=sorted(FAMILIES), required=True)
    gen.add_argument("-m", "--machines", type=int, default=10)
    gen.add_argument("-n", "--jobs", type=int, default=30)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument(
        "--output", help="also write the instance to a .json/.csv/.txt file"
    )
    gen.set_defaults(fn=_cmd_generate)

    conv = subs.add_parser(
        "convert", help="convert an instance file between formats"
    )
    conv.add_argument("source", help="input instance file (.json/.csv/.txt)")
    conv.add_argument("dest", help="output instance file (.json/.csv/.txt)")
    conv.set_defaults(fn=_cmd_convert)

    fig = subs.add_parser("figure", help="regenerate a paper figure")
    fig.add_argument("number", choices=("1", "2", "3", "4", "5"))
    fig.add_argument("--scale", choices=("smoke", "paper"), default="smoke")
    fig.set_defaults(fn=_cmd_figure)

    ver = subs.add_parser("verify", help="verify a schedule JSON file")
    ver.add_argument("schedule", help="path to a schedule .json")
    ver.set_defaults(fn=_cmd_verify)

    tab = subs.add_parser("table", help="regenerate a paper table")
    tab.add_argument("number", choices=("1", "2", "3"))
    tab.add_argument("--scale", choices=("smoke", "paper"), default="smoke")
    tab.set_defaults(fn=_cmd_table)

    bench = subs.add_parser("bench-dp", help="compare DP engines")
    _add_instance_args(bench)
    bench.add_argument("--eps", type=float, default=0.3)
    bench.set_defaults(fn=_cmd_bench_dp)

    srv = subs.add_parser(
        "serve", help="run the asyncio scheduling service (docs/service.md)"
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8357)
    srv.add_argument(
        "--workers",
        type=_workers_arg,
        default="auto",
        help="solver worker threads, or 'auto' (default) for cgroup-aware "
        "CPU detection",
    )
    srv.add_argument(
        "--pool-workers",
        type=_pool_workers_arg,
        default=0,
        metavar="N",
        help="run the sharded multi-process solver pool with N worker "
        "processes ('auto' = usable CPUs; 0, the default, keeps the "
        "single-process service) — see docs/scaling.md",
    )
    srv.add_argument(
        "--batch-window",
        type=float,
        default=0.005,
        help="seconds to gather compatible small requests into one batch",
    )
    srv.add_argument("--queue-depth", type=int, default=64)
    srv.add_argument("--cache-size", type=int, default=1024)
    srv.add_argument("--cache-ttl", type=float, default=None)
    srv.add_argument(
        "--default-deadline",
        type=float,
        default=None,
        help="per-request deadline (s) applied when the request sets none",
    )
    srv.add_argument(
        "--log-interval",
        type=float,
        default=30.0,
        help="seconds between metrics heartbeat lines (0 disables)",
    )
    srv.add_argument(
        "--store",
        metavar="DIR",
        help="durable result store + write-ahead journal directory "
        "(docs/persistence.md); uncommitted work is replayed on startup",
    )
    srv.add_argument(
        "--store-ttl",
        type=float,
        default=None,
        help="seconds a stored result stays servable from disk",
    )
    srv.add_argument(
        "--archive-traces",
        action="store_true",
        help="with --store: archive each solve's trace into the store",
    )
    srv.set_defaults(fn=_cmd_serve)

    sub_cmd = subs.add_parser(
        "submit", help="submit one request to a running service"
    )
    _add_instance_args(sub_cmd)
    _add_problem_args(sub_cmd)
    sub_cmd.add_argument("--host", default="127.0.0.1")
    sub_cmd.add_argument("--port", type=int, default=8357)
    sub_cmd.add_argument(
        "-a", "--algorithm", default="ptas", help="engine name (see 'solve')"
    )
    sub_cmd.add_argument("--eps", type=float, default=0.3)
    sub_cmd.add_argument("--engine", default="dominance")
    sub_cmd.add_argument(
        "--workers",
        type=_workers_arg,
        default="auto",
        help="worker count or 'auto' (resolved server-side)",
    )
    sub_cmd.add_argument("--backend", default="thread")
    sub_cmd.add_argument(
        "--mode",
        choices=MODES,
        default="wavefront",
        help="parallel-ptas bisection mode (see 'solve')",
    )
    sub_cmd.add_argument("--time-limit", type=float, default=None)
    sub_cmd.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-request budget (s); overrun degrades to LPT",
    )
    sub_cmd.add_argument("--timeout", type=float, default=60.0)
    sub_cmd.add_argument("--show-schedule", action="store_true")
    sub_cmd.add_argument(
        "--op",
        choices=("ping", "stats", "healthcheck", "shutdown"),
        help="send a control op instead of a solve request",
    )
    sub_cmd.add_argument(
        "--repeat",
        type=int,
        default=0,
        metavar="N",
        help="replay N copies of the request (unique request_ids), "
        "verify every schedule, and print throughput + latency",
    )
    sub_cmd.add_argument(
        "--concurrency",
        type=int,
        default=1,
        metavar="C",
        help="with --repeat: number of persistent connections to spread "
        "the replay over",
    )
    sub_cmd.set_defaults(fn=_cmd_submit)

    st = subs.add_parser(
        "store",
        help="inspect and maintain a durable result store directory "
        "(docs/persistence.md)",
    )
    st_subs = st.add_subparsers(dest="store_command", required=True)
    st_stats = st_subs.add_parser(
        "stats", help="print store + journal statistics as JSON"
    )
    st_stats.add_argument("dir", help="store directory")
    st_stats.set_defaults(fn=_cmd_store_stats)
    st_verify = st_subs.add_parser(
        "verify",
        help="checksum every segment and re-verify every stored schedule; "
        "corrupt segments are quarantined",
    )
    st_verify.add_argument("dir", help="store directory")
    st_verify.add_argument(
        "--shallow",
        action="store_true",
        help="checksums only; skip per-schedule re-verification",
    )
    st_verify.set_defaults(fn=_cmd_store_verify)
    st_compact = st_subs.add_parser(
        "compact",
        help="rewrite live records into fresh segments, dropping "
        "superseded and expired entries",
    )
    st_compact.add_argument("dir", help="store directory")
    st_compact.add_argument(
        "--ttl",
        type=float,
        default=None,
        help="drop results older than this many seconds while compacting",
    )
    st_compact.set_defaults(fn=_cmd_store_compact)
    st_replay = st_subs.add_parser(
        "replay",
        help="re-solve every journal's uncommitted entries into the "
        "store, including per-worker pool journals (what 'serve "
        "--store' does on startup, offline)",
    )
    st_replay.add_argument("dir", help="store directory")
    st_replay.set_defaults(fn=_cmd_store_replay)

    qa = subs.add_parser(
        "qa",
        help="differential fuzzing of the engine fleet (docs/qa.md)",
    )
    qa_subs = qa.add_subparsers(dest="qa_command", required=True)
    qa_fuzz = qa_subs.add_parser(
        "fuzz",
        help="draw seeded instances, run every capable engine, check the "
        "cross-engine / metamorphic / service oracles, and write "
        "minimized repro files for any failure",
    )
    qa_fuzz.add_argument("--seed", type=int, default=0)
    qa_fuzz.add_argument(
        "--budget", type=int, default=200, help="number of fuzz cases"
    )
    qa_fuzz.add_argument(
        "--problem",
        choices=("both", "p_cmax", "q_cmax"),
        default="both",
        help="restrict the drawn problem variant",
    )
    qa_fuzz.add_argument(
        "--corpus",
        default="qa-corpus",
        metavar="DIR",
        help="directory minimized repro files are written to",
    )
    qa_fuzz.add_argument("--eps", type=float, default=0.3)
    qa_fuzz.add_argument("--max-jobs", type=int, default=12)
    qa_fuzz.add_argument("--max-machines", type=int, default=4)
    qa_fuzz.add_argument(
        "--max-failures",
        type=int,
        default=10,
        help="stop after this many distinct failures",
    )
    qa_fuzz.add_argument(
        "--engines",
        default="",
        metavar="A,B,...",
        help="comma-separated engine subset (default: every registered "
        "engine whose capabilities match each case)",
    )
    qa_fuzz.add_argument(
        "--no-metamorphic",
        action="store_true",
        help="skip the metamorphic-invariant oracle",
    )
    qa_fuzz.add_argument(
        "--no-service",
        action="store_true",
        help="skip the sampled wire/in-process equivalence oracle",
    )
    qa_fuzz.set_defaults(fn=_cmd_qa_fuzz)
    qa_replay = qa_subs.add_parser(
        "replay",
        help="re-run the recorded oracle on corpus repro files; exits "
        "non-zero while any still fails",
    )
    qa_replay.add_argument(
        "files", nargs="+", help="repro .json files written by 'qa fuzz'"
    )
    qa_replay.add_argument(
        "--all-oracles",
        action="store_true",
        help="re-run all three oracle classes, not just the recorded one",
    )
    qa_replay.set_defaults(fn=_cmd_qa_replay)

    rep = subs.add_parser(
        "reproduce", help="regenerate every paper artifact into a directory"
    )
    rep.add_argument("--out", default="results")
    rep.add_argument("--scale", choices=("smoke", "paper"), default="smoke")
    rep.add_argument(
        "--golden",
        default="results/golden/smoke.json",
        help="golden file to verify against ('' to skip)",
    )
    rep.set_defaults(fn=_cmd_reproduce)

    exp = subs.add_parser(
        "experiment", help="run an evaluation campaign over instance types"
    )
    exp.add_argument(
        "--grid",
        default="paper",
        help="'paper' for the full 24-type grid of §V-A, or a "
        "comma-separated list of kind:m:n triples "
        "(e.g. u_10:10:30,u_100:20:100)",
    )
    exp.add_argument("--instances", type=int, default=20)
    exp.add_argument("--cores", default="2,4,8,16")
    exp.add_argument("--ip-time-limit", type=float, default=30.0)
    exp.add_argument("--seed", type=int, default=0)
    exp.add_argument("--csv-dir", help="export per-run and summary CSVs here")
    exp.set_defaults(fn=_cmd_experiment)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
