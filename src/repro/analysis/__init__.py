"""Statistical and scaling analysis of experiment results.

* :mod:`repro.analysis.stats` — bootstrap confidence intervals and
  summary statistics for the per-family averages the figures report.
* :mod:`repro.analysis.scaling` — parallel-scaling diagnostics: Amdahl
  fits, the Karp–Flatt experimentally-determined serial fraction, and
  parallel efficiency, applied to speedup curves to explain *why* they
  saturate (growing serial fraction = overhead-bound; flat = genuinely
  load-balance-bound).
"""

from repro.analysis.scaling import (
    amdahl_fit,
    amdahl_speedup,
    karp_flatt,
    parallel_efficiency,
)
from repro.analysis.stats import bootstrap_ci, mean_and_ci

__all__ = [
    "karp_flatt",
    "amdahl_speedup",
    "amdahl_fit",
    "parallel_efficiency",
    "bootstrap_ci",
    "mean_and_ci",
]
