"""Bootstrap statistics for experiment batches.

The paper reports plain averages over 20 instances; with seeded
generators we can do slightly better and attach nonparametric confidence
intervals, so EXPERIMENTS.md can say not just "the mean speedup was
12.5x" but how stable that number is across the instance draw.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class MeanCI:
    """A mean with a two-sided bootstrap confidence interval."""

    mean: float
    lower: float
    upper: float
    confidence: float
    samples: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        pct = int(round(self.confidence * 100))
        return f"{self.mean:.3f} [{self.lower:.3f}, {self.upper:.3f}] ({pct}% CI)"


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile bootstrap CI for the mean of ``values``.

    Deterministic given ``seed`` (harnesses must be reproducible).
    """
    if not values:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if resamples < 1:
        raise ValueError("resamples must be >= 1")
    data = np.asarray(values, dtype=float)
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, len(data), size=(resamples, len(data)))
    means = data[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    lower, upper = np.quantile(means, [alpha, 1.0 - alpha])
    return float(lower), float(upper)


def mean_and_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> MeanCI:
    """Mean plus bootstrap CI, bundled for reporting."""
    lower, upper = bootstrap_ci(values, confidence, resamples, seed)
    return MeanCI(
        mean=float(np.mean(np.asarray(values, dtype=float))),
        lower=lower,
        upper=upper,
        confidence=confidence,
        samples=len(values),
    )
