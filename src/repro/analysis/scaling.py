"""Parallel-scaling diagnostics for speedup curves.

The paper reports raw speedup numbers; these helpers extract the
standard second-order quantities from them:

* :func:`parallel_efficiency` — ``S/P``.
* :func:`karp_flatt` — the experimentally determined serial fraction
  ``e = (1/S - 1/P) / (1 - 1/P)``.  Constant ``e`` across ``P`` indicates
  a genuinely serial component (Amdahl); *growing* ``e`` indicates
  overhead that scales with ``P`` (barriers, dispatch) — which is what
  wavefront DP exhibits once anti-diagonals get narrower than ``P``.
* :func:`amdahl_fit` — least-squares fit of the serial fraction of
  Amdahl's law to a measured speedup curve, plus the implied asymptote.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


def parallel_efficiency(speedup: float, processors: int) -> float:
    """``S / P`` — 1.0 is ideal linear scaling."""
    if processors < 1:
        raise ValueError("processors must be >= 1")
    if speedup < 0:
        raise ValueError("speedup must be non-negative")
    return speedup / processors


def karp_flatt(speedup: float, processors: int) -> float:
    """Karp–Flatt metric: the serial fraction a measured (S, P) implies.

    >>> round(karp_flatt(6.5, 8), 4)   # the paper's 8-core best case
    0.033
    """
    if processors < 2:
        raise ValueError("the Karp-Flatt metric needs P >= 2")
    if speedup <= 0:
        raise ValueError("speedup must be positive")
    return (1.0 / speedup - 1.0 / processors) / (1.0 - 1.0 / processors)


def amdahl_speedup(serial_fraction: float, processors: int) -> float:
    """Amdahl's law: ``S(P) = 1 / (f + (1-f)/P)``."""
    if not 0.0 <= serial_fraction <= 1.0:
        raise ValueError("serial fraction must be in [0, 1]")
    if processors < 1:
        raise ValueError("processors must be >= 1")
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / processors)


@dataclass(frozen=True)
class AmdahlFit:
    """Result of fitting Amdahl's law to a measured curve."""

    serial_fraction: float
    max_speedup: float  # the asymptote 1/f (inf when f == 0)
    residual: float  # RMS error of the fit in speedup units

    def predict(self, processors: int) -> float:
        """Speedup the fitted Amdahl curve predicts at ``processors``."""
        return amdahl_speedup(self.serial_fraction, processors)


def amdahl_fit(
    processors: Sequence[int], speedups: Sequence[float]
) -> AmdahlFit:
    """Least-squares fit of the serial fraction ``f``.

    Amdahl's law is linear in ``f`` after the substitution
    ``1/S = f (1 - 1/P) + 1/P``, so the fit is closed-form.
    """
    if len(processors) != len(speedups) or not processors:
        raise ValueError("need equally many processors and speedups, >= 1")
    xs, ys = [], []
    for p, s in zip(processors, speedups):
        if p < 2:
            continue  # P=1 carries no information about f
        if s <= 0:
            raise ValueError("speedups must be positive")
        xs.append(1.0 - 1.0 / p)
        ys.append(1.0 / s - 1.0 / p)
    if not xs:
        raise ValueError("need at least one measurement with P >= 2")
    f = sum(x * y for x, y in zip(xs, ys)) / sum(x * x for x in xs)
    f = min(max(f, 0.0), 1.0)
    residual_sq = 0.0
    for p, s in zip(processors, speedups):
        residual_sq += (amdahl_speedup(f, p) - s) ** 2
    rms = (residual_sq / len(processors)) ** 0.5
    return AmdahlFit(
        serial_fraction=f,
        max_speedup=float("inf") if f == 0 else 1.0 / f,
        residual=rms,
    )
