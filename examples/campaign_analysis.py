#!/usr/bin/env python3
"""Scenario: running and analyzing a full evaluation campaign.

Drives a miniature version of the paper's 480-run evaluation through
:mod:`repro.experiments.campaign`, then applies the analysis toolkit:
bootstrap confidence intervals on the per-type speedups, Amdahl fits and
Karp–Flatt serial fractions explaining the saturation, and a CSV export
for external plotting.

Run:  python examples/campaign_analysis.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.analysis.scaling import amdahl_speedup
from repro.experiments.campaign import run_campaign
from repro.experiments.harness import ExperimentConfig
from repro.experiments.plots import speedup_plot


def main() -> None:
    cores = (2, 4, 8, 16)
    config = ExperimentConfig(cores=cores, ip_time_limit=10.0)
    grid = [("u_100", 10, 30), ("u_10n", 10, 30)]
    print("Running a miniature campaign (2 types x 3 instances)...\n")
    result = run_campaign(grid, instances_per_type=3, config=config, base_seed=1)

    print(result.render())

    print("\nSpeedup curves with the Amdahl fit's prediction:")
    for agg in result.aggregates:
        means = [agg.speedup_ci(c).mean for c in cores]
        diag = agg.scaling_diagnostics(cores)
        fitted = [
            amdahl_speedup(diag["serial_fraction"], c) for c in cores
        ]
        print()
        print(
            speedup_plot(
                cores,
                {"measured": means, "amdahl fit": fitted},
                title=agg.key.label(),
            )
        )
        print(
            f"  -> serial fraction {diag['serial_fraction']:.3f}, "
            f"Amdahl ceiling {diag['amdahl_max_speedup']:.1f}x, "
            f"Karp-Flatt at 16 cores {diag['karp_flatt_at_max']:.3f}"
        )

    with tempfile.TemporaryDirectory() as tmp:
        paths = result.export_csv(Path(tmp))
        print("\nCSV export:")
        for p in paths:
            print(f"  {p.name}: {len(p.read_text().splitlines()) - 1} data rows")


if __name__ == "__main__":
    main()
