#!/usr/bin/env python3
"""Scenario: reproducing the paper's speedup curves on one instance.

Runs the parallel approximation algorithm on a U(1, 10n) instance across
1-32 simulated processors and prints the speedup curve with per-level
utilization detail — the anatomy of Fig. 2(a)/3(a): near-linear scaling
while every anti-diagonal of the DP table is wider than P, saturation
once the narrow head/tail diagonals dominate.

Also demonstrates the real shared-memory backends (thread, process) for
users on actual multicore hosts.

Run:  python examples/speedup_study.py
"""

from __future__ import annotations

from repro import make_instance, parallel_ptas
from repro.core.bounds import makespan_bounds
from repro.core.dp import DPProblem
from repro.core.parallel_dp import build_level_index, parallel_dp
from repro.core.rounding import round_instance


def main() -> None:
    inst = make_instance("u_10n", m=10, n=30, seed=3)
    print(f"Instance: {inst}\n")

    # --- the wavefront structure ------------------------------------
    target = makespan_bounds(inst).midpoint()
    rounded = round_instance(inst, target, k=4)
    problem = DPProblem(rounded.class_sizes, rounded.class_counts, target)
    idx = build_level_index(problem)
    print(
        f"DP table at T={target}: {rounded.num_classes} classes, "
        f"sigma={problem.table_size} states over {idx.num_levels} "
        f"anti-diagonals"
    )
    print("anti-diagonal widths q_l (parallelism available per level):")
    sizes = idx.sizes
    peak = max(sizes)
    for l in range(0, idx.num_levels, max(1, idx.num_levels // 12)):
        bar = "#" * int(sizes[l] / peak * 50)
        print(f"  l={l:3d}  q={sizes[l]:5d} |{bar}")

    # --- the speedup curve -------------------------------------------
    print("\nsimulated speedup of the full parallel PTAS:")
    print(f"{'P':>4} {'speedup':>8} {'efficiency':>11}")
    for p in (1, 2, 4, 8, 16, 32):
        result = parallel_ptas(inst, 0.3, num_workers=p)
        s = result.simulated_speedup or 1.0
        print(f"{p:>4} {s:>8.2f} {s / p:>10.1%}")

    # --- real backends -----------------------------------------------
    print("\nreal shared-memory backends (correctness demo; wall-clock")
    print("speedup needs a multicore host and the process backend):")
    serial = parallel_dp(problem, 1, "serial")
    for backend in ("thread", "process"):
        res = parallel_dp(problem, 2, backend)
        status = "OK" if res.opt == serial.opt else "MISMATCH"
        print(f"  {backend:8s} OPT={res.opt}  vs serial: {status}")


if __name__ == "__main__":
    main()
