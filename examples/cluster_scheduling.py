#!/usr/bin/env python3
"""Scenario: nightly batch scheduling on a homogeneous compute cluster.

A realistic consumer of the library: a cluster operator has a queue of
batch jobs with known runtimes (minutes) and a pool of identical nodes,
and wants the whole queue to finish as early as possible — exactly
``P || Cmax``.  The operator compares the quick LPT heuristic against the
parallel PTAS at several accuracy levels and picks the schedule to
publish.

Run:  python examples/cluster_scheduling.py
"""

from __future__ import annotations

import numpy as np

from repro import Instance, lpt, parallel_ptas


def make_job_queue(seed: int = 7) -> Instance:
    """A bimodal nightly queue: many short ETL jobs plus a few long
    model-training jobs — the mix where LPT's greediness hurts."""
    rng = np.random.default_rng(seed)
    short = rng.integers(5, 30, size=60)          # 5-30 minute ETL tasks
    long_ = rng.integers(180, 400, size=9)        # 3-6.5 hour trainings
    times = [int(t) for t in np.concatenate([short, long_])]
    return Instance(times, num_machines=8)


def describe(label: str, makespan: int, baseline: int) -> None:
    hours = makespan / 60
    saved = (baseline - makespan) / 60
    note = f" (saves {saved:.1f}h vs LPT)" if saved > 0 else ""
    print(f"  {label:<24} finishes after {hours:5.2f}h{note}")


def main() -> None:
    queue = make_job_queue()
    print(
        f"Nightly queue: {queue.num_jobs} jobs, {queue.total_work/60:.1f} "
        f"machine-hours on {queue.num_machines} nodes"
    )
    print(f"Lower bound on completion: {queue.trivial_lower_bound()/60:.2f}h\n")

    lpt_schedule = lpt(queue)
    baseline = lpt_schedule.makespan
    print("Candidate schedules:")
    describe("LPT (instant)", baseline, baseline)

    for eps in (0.5, 0.3, 0.2):
        result = parallel_ptas(queue, eps, num_workers=8)
        describe(f"parallel PTAS eps={eps}", result.makespan, baseline)

    # Publish the best schedule with per-node manifests.
    best = parallel_ptas(queue, 0.2, num_workers=8).schedule
    print("\nPublished schedule (per-node load):")
    for node, load in enumerate(best.machine_loads):
        bar = "#" * int(load / best.makespan * 40)
        print(f"  node {node}: {load/60:5.2f}h |{bar}")
    print(
        f"\nMakespan {best.makespan/60:.2f}h vs lower bound "
        f"{queue.trivial_lower_bound()/60:.2f}h "
        f"(gap {(best.makespan / queue.trivial_lower_bound() - 1) * 100:.1f}%)"
    )


if __name__ == "__main__":
    main()
