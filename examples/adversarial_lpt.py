#!/usr/bin/env python3
"""Scenario: where the PTAS earns its keep — LPT's worst case.

The paper's Table II/Fig. 5 best cases come from the family
``U(m, 2m-1)`` with ``n = 2m+1``, which is built to trip LPT (Graham's
tight example lives there: LPT = 4m-1 vs OPT = 3m).  This example runs
both the deterministic tight instance and random draws from the family,
showing LPT stuck near ratio 4/3 while the parallel PTAS lands on the
optimum.

Run:  python examples/adversarial_lpt.py
"""

from __future__ import annotations

from repro import lpt, parallel_ptas, solve_exact
from repro.workloads.generator import lpt_adversarial, lpt_worst_case_exact


def report(name: str, inst, opt: int) -> None:
    lpt_ms = lpt(inst).makespan
    ptas_ms = parallel_ptas(inst, 0.3, num_workers=4).makespan
    print(
        f"  {name:<26} OPT={opt:4d}  LPT={lpt_ms:4d} ({lpt_ms/opt:.3f})  "
        f"parallel PTAS={ptas_ms:4d} ({ptas_ms/opt:.3f})"
    )


def main() -> None:
    print("Graham's deterministic tight examples (LPT = (4m-1)/(3m) * OPT):")
    for m in (3, 5, 7):
        inst = lpt_worst_case_exact(m)
        opt = 3 * m  # known in closed form for this construction
        report(f"tight m={m} (n={inst.num_jobs})", inst, opt)

    print("\nRandom draws from the paper's adversarial family "
          "U(m, 2m-1), n=2m+1:")
    for seed in range(5):
        inst = lpt_adversarial(m=8, seed=seed)
        opt = solve_exact(inst, "bnb").makespan
        report(f"U(8,15) n=17 seed={seed}", inst, opt)

    print(
        "\nReading: on this family the PTAS's rounding + exact packing of "
        "long jobs sidesteps the greedy trap; its ratio stays near 1.0 "
        "while LPT pays up to a third extra — the 0.28 gap the paper "
        "reports as its best case."
    )


if __name__ == "__main__":
    main()
