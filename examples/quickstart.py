#!/usr/bin/env python3
"""Quickstart: solve one P||Cmax instance with every algorithm.

Run:  python examples/quickstart.py

Generates a small instance of the paper's U(1, 100) family, solves it
with the sequential PTAS, the parallel approximation algorithm, the
classical heuristics and the exact MILP, and prints a comparison — the
one-instance version of the paper's evaluation.
"""

from __future__ import annotations

import time

from repro import (
    Instance,
    list_scheduling,
    lpt,
    make_instance,
    multifit,
    parallel_ptas,
    ptas,
    solve_exact,
)


def timed(label: str, fn):
    t0 = time.perf_counter()
    result = fn()
    return label, result, time.perf_counter() - t0


def main() -> None:
    # An instance of the paper's U(1, 100) family: 30 jobs, 6 machines.
    inst = make_instance("u_100", m=6, n=30, seed=42)
    print(f"Instance: {inst}")
    print(f"Trivial bounds: LB={inst.trivial_lower_bound()}, "
          f"UB={inst.trivial_upper_bound()}\n")

    runs = [
        timed("IP (HiGHS, optimal)", lambda: solve_exact(inst, "ilp").schedule),
        timed("sequential PTAS (eps=0.3)", lambda: ptas(inst, 0.3).schedule),
        timed(
            "parallel PTAS (8 workers)",
            lambda: parallel_ptas(inst, 0.3, num_workers=8).schedule,
        ),
        timed("LPT", lambda: lpt(inst)),
        timed("LS", lambda: list_scheduling(inst)),
        timed("MULTIFIT", lambda: multifit(inst)),
    ]

    optimal = runs[0][1].makespan
    print(f"{'algorithm':<28} {'makespan':>8} {'ratio':>7} {'time [s]':>9}")
    print("-" * 56)
    for label, schedule, seconds in runs:
        ratio = schedule.makespan / optimal
        print(f"{label:<28} {schedule.makespan:>8} {ratio:>7.3f} {seconds:>9.4f}")

    # The parallel algorithm computes the same schedule as the sequential
    # PTAS — parallelization never changes results.
    seq = ptas(inst, 0.3, engine="table")
    par = parallel_ptas(inst, 0.3, num_workers=8)
    assert par.schedule.assignment == seq.schedule.assignment
    print("\nparallel PTAS schedule == sequential PTAS schedule: OK")
    print(f"certified target T* = {par.final_target}, "
          f"guarantee <= {par.guarantee_factor:.1f} * OPT")
    if par.simulated_speedup is not None:
        print(f"simulated 8-core speedup of the DP: {par.simulated_speedup:.2f}x")


if __name__ == "__main__":
    main()
