#!/usr/bin/env python3
"""Study: the accuracy/runtime trade-off of the PTAS.

Sweeps ``eps`` and reports, for each setting, the accuracy parameter
``k``, the certified target, the achieved makespan, the DP table sizes
the bisection encountered, and the wall time — making the PTAS's
"exponential in 1/eps" character tangible, as well as why the paper picks
``eps = 0.3`` (k=4): it is the point where the guarantee beats LPT's 4/3
while the DP stays tractable.

Run:  python examples/epsilon_tradeoff.py
"""

from __future__ import annotations

import time

from repro import lpt, make_instance, ptas, solve_exact


def main() -> None:
    inst = make_instance("u_10n", m=6, n=24, seed=11)
    print(f"Instance: {inst}\n")

    optimal = solve_exact(inst, "bnb").makespan
    lpt_makespan = lpt(inst).makespan
    print(f"optimal makespan (branch & bound): {optimal}")
    print(f"LPT makespan: {lpt_makespan} (ratio {lpt_makespan/optimal:.3f})\n")

    header = (
        f"{'eps':>5} {'k':>3} {'target':>7} {'makespan':>9} {'ratio':>7} "
        f"{'max sigma':>10} {'probes':>7} {'time [s]':>9}"
    )
    print(header)
    print("-" * len(header))
    for eps in (2.0, 1.0, 0.6, 0.45, 0.3, 0.22):
        t0 = time.perf_counter()
        result = ptas(inst, eps, engine="table")
        elapsed = time.perf_counter() - t0
        max_sigma = max(it.table_size for it in result.outcome.iterations)
        print(
            f"{eps:>5.2f} {result.k:>3} {result.final_target:>7} "
            f"{result.makespan:>9} {result.makespan/optimal:>7.3f} "
            f"{max_sigma:>10} {result.num_bisection_iterations:>7} "
            f"{elapsed:>9.4f}"
        )

    print(
        "\nReading: smaller eps -> larger k -> finer rounding classes -> "
        "bigger DP tables and slower solves, in exchange for a tighter "
        "certified ratio.  The actual ratio is usually far below 1+eps."
    )


if __name__ == "__main__":
    main()
