# Containerized scheduling service: the sharded multi-process solver
# pool of docs/scaling.md behind the JSON-lines front end of
# docs/service.md.
#
#   docker build -t repro-pcmax .
#   docker run -p 8357:8357 -v repro-store:/var/lib/repro-store repro-pcmax
#
# The pool sizes itself to the CPUs the container is actually granted
# (--pool-workers auto reads the affinity mask and cgroup quota, so
# `docker run --cpus 4` yields a 4-worker pool), and the store volume
# makes results and write-ahead journals survive container restarts.

FROM python:3.12-slim

WORKDIR /app

COPY pyproject.toml README.md ./
COPY src ./src

RUN pip install --no-cache-dir .

RUN mkdir -p /var/lib/repro-store
VOLUME /var/lib/repro-store

EXPOSE 8357

# The healthcheck op probes every pool worker (liveness, responsiveness,
# in-flight depth) through the live server; the CLI exits 1 unless all
# workers are healthy.
HEALTHCHECK --interval=30s --timeout=10s --start-period=15s --retries=3 \
  CMD repro-pcmax submit --host 127.0.0.1 --port 8357 --op healthcheck || exit 1

ENTRYPOINT ["repro-pcmax", "serve", "--host", "0.0.0.0", "--port", "8357", \
            "--pool-workers", "auto", "--store", "/var/lib/repro-store"]
