"""Shared configuration for the benchmark suite.

Scale is controlled by the ``REPRO_SCALE`` environment variable:

* ``smoke`` (default) — 2 instances per family, 10 s IP limit; the whole
  suite completes in minutes and still reproduces every qualitative
  claim.
* ``paper`` — the full §V-A setup (20 instances per type, 30 s IP limit).

Rendered figure/table panels are written to ``results/`` next to the
repository root so EXPERIMENTS.md can reference byte-identical output.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def current_scale() -> str:
    scale = os.environ.get("REPRO_SCALE", "smoke")
    if scale not in ("smoke", "paper"):
        raise ValueError(f"REPRO_SCALE must be smoke or paper, got {scale!r}")
    return scale


@pytest.fixture(scope="session")
def scale() -> str:
    return current_scale()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_panel(results_dir: Path, name: str, content: str) -> None:
    """Persist one rendered experiment panel."""
    (results_dir / f"{name}.txt").write_text(content + "\n")
