"""Durable-store latency benchmark: cold solve vs disk hit vs memory hit.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_store.py

Times the three tiers a request can be answered from once
``repro-pcmax serve --store DIR`` is running:

* **cold** — a full PTAS solve through the engine registry (what a
  miss in both tiers costs);
* **disk hit** — a fresh process/cache finding the canonical result in
  the :class:`repro.store.ResultStore`: checksum-verified point read,
  schedule re-verification, remap to the caller's job numbering, and
  promotion into the memory tier;
* **memory hit** — the in-memory canonical cache serving the same
  request again.

Every served result is verified against the instance before a timing is
accepted.  Results are *merged* into ``BENCH_dp.json`` at the repo root
(under the ``"store_latency"`` key, preserving the kernel benchmark's
payload) so the perf trajectory is tracked across PRs.
"""

from __future__ import annotations

import random
import sys
import time
from pathlib import Path

from repro.io.benchjson import update_section
from repro.model.verify import verify_schedule
from repro.service.cache import ResultCache, canonical_key, canonicalize_result
from repro.service.registry import solve_to_result
from repro.service.requests import SolveRequest
from repro.store import ResultStore

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_dp.json"

N, M, EPS, SEED = 30, 5, 0.15, 7
REPS = 5


def build_request() -> SolveRequest:
    """A mid-size PTAS request: heavy enough that the tiers separate by
    orders of magnitude, light enough for a CI smoke run."""
    rng = random.Random(SEED)
    times = tuple(rng.randint(20, 200) for _ in range(N))
    return SolveRequest(times=times, machines=M, engine="ptas", eps=EPS)


def best_of(fn, reps: int = REPS) -> tuple[float, object]:
    """Best-of-``reps`` wall time and the last result."""
    best, result = float("inf"), None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def main() -> int:
    import tempfile

    request = build_request()
    inst = request.instance()

    def check(result) -> None:
        assert result is not None and result.ok, result
        report = verify_schedule(result.schedule(inst), inst)
        assert report.ok, report.violations

    # Tier 3: cold solve (both tiers miss).
    cold_s, cold = best_of(lambda: solve_to_result(request))
    check(cold)

    with tempfile.TemporaryDirectory(prefix="bench-store-") as tmp:
        with ResultStore(tmp) as store:
            store.put(canonical_key(request), canonicalize_result(request, cold))

        # Tier 2: disk hit — a fresh cache per rep so memory never serves;
        # includes checksum verification, schedule re-verification,
        # remapping, and promotion (the full read path of a restart).
        def disk_hit():
            with ResultStore(tmp) as store:
                cache = ResultCache(max_entries=16, store=store)
                return cache.get(request)

        disk_s, from_disk = best_of(disk_hit)
        check(from_disk)
        assert from_disk.cached and from_disk.makespan == cold.makespan

        # Tier 1: memory hit on a warm cache.
        with ResultStore(tmp) as store:
            cache = ResultCache(max_entries=16, store=store)
            cache.get(request)  # promote once
            mem_s, from_mem = best_of(lambda: cache.get(request))
        check(from_mem)
        assert cache.stats()["hits"] >= REPS

    stats = {
        "instance": {"n": N, "m": M, "eps": EPS, "seed": SEED, "engine": "ptas"},
        "cold_solve_ms": round(cold_s * 1e3, 3),
        "disk_hit_ms": round(disk_s * 1e3, 3),
        "memory_hit_ms": round(mem_s * 1e3, 3),
        "disk_speedup_over_cold": round(cold_s / disk_s, 1),
        "memory_speedup_over_cold": round(cold_s / mem_s, 1),
    }
    for tier in ("cold_solve_ms", "disk_hit_ms", "memory_hit_ms"):
        print(f"{tier:>24}: {stats[tier]:10.3f}")
    print(
        f"speedup over cold solve: disk {stats['disk_speedup_over_cold']}x, "
        f"memory {stats['memory_speedup_over_cold']}x"
    )

    # A disk hit must beat re-solving or the durable tier is pointless.
    if disk_s >= cold_s:
        print("FAIL: a disk hit is no faster than a cold solve")
        return 1

    update_section(OUTPUT, "store_latency", stats)
    print(f"merged store_latency into {OUTPUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
