"""Wavefront kernel benchmark: states/sec per backend × worker count.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_kernel.py

Solves one Figure-3-scale DP probe — the ``u_10n`` family at ``m=10,
n=50`` (seed 0), target at the Eq. 1 lower bound (the hardest probe of
the bisection), accuracy parameter ``k=5`` so the table is large enough
(sigma ~25k states) that per-sweep timing is dominated by the recurrence
rather than by pool startup — and times:

* ``legacy-thread`` — the seed's pure-Python per-state loop (the old
  ``_compute_states`` worker, preserved verbatim below as the baseline)
  on the thread backend;
* the vectorized :class:`~repro.core.kernels.LevelKernel` on every
  backend (numpy-serial, serial, thread, process).

Every timed run is checked bit-identical to the reference table and
asserted to reach the same OPT as :func:`repro.core.dp.solve_table`.
The kernel thread backend must be at least 3x the legacy thread backend
at every worker count; results land in ``BENCH_dp.json`` at the repo
root so the perf trajectory is tracked across PRs.

A final traced run (``repro.obs.Tracer`` through a
:class:`~repro.core.context.SolveContext`) records the per-level span
breakdown of one numpy-serial table fill and reports what share of the
``dp`` span the ``level`` spans account for — the observability layer's
coverage figure, also asserted (loosely) here so a regression that stops
instrumenting levels fails the benchmark.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.bounds import makespan_bounds
from repro.core.context import SolveContext
from repro.core.dp import DPProblem, solve_table
from repro.core.kernels import LevelKernel, build_level_arrays, table_to_optional
from repro.core.parallel_dp import compute_table, parallel_dp
from repro.core.rounding import round_instance
from repro.obs import Tracer
from repro.parallel.executor import ThreadExecutor, make_executor, shutdown_pools
from repro.parallel.partition import round_robin_partition
from repro.workloads.generator import make_instance

FAMILY, M, N, SEED = "u_10n", 10, 50, 0
K = 5
THREAD_WORKERS = (1, 2, 4)
PROCESS_WORKERS = (2,)
REPS = 2
MIN_SPEEDUP = 3.0
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_dp.json"


def build_problem() -> DPProblem:
    """The Figure-3-scale probe described in the module docstring."""
    inst = make_instance(FAMILY, M, N, seed=SEED)
    target = makespan_bounds(inst).lower
    rounded = round_instance(inst, target, K)
    return DPProblem(
        rounded.class_sizes, rounded.class_counts, target, job_cap=K - 1
    )


def legacy_thread_sweep(problem: DPProblem, num_workers: int):
    """The seed's thread backend: per-state pure-Python loop with the
    ``None`` sentinel, one chunk per worker per level.  Kept here (only)
    as the benchmark baseline after the kernel replaced it in
    :mod:`repro.core.parallel_dp`."""
    dims = problem.dims
    strides = problem.strides()
    configs = problem.configurations().configs
    offsets = [
        sum(s * st for s, st in zip(cfg, strides)) for cfg in configs
    ]
    table: list[int | None] = [None] * problem.table_size
    table[0] = 0
    d = len(dims)

    def compute_states(chunk) -> None:
        for flat in chunk:
            flat = int(flat)
            if flat == 0:
                continue
            v = tuple((flat // strides[i]) % dims[i] for i in range(d))
            best: int | None = None
            for cfg, offset in zip(configs, offsets):
                if all(cfg[i] <= v[i] for i in range(d)):
                    prev = table[flat - offset]
                    if prev is not None and (best is None or prev < best):
                        best = prev
            table[flat] = None if best is None else best + 1

    levels = build_level_arrays(dims)
    with ThreadExecutor(num_workers) as ex:
        for level in levels[1:]:
            chunks = round_robin_partition(list(level), num_workers)
            ex.map_chunks(compute_states, chunks)
    return table


def timed(fn, reps: int = REPS):
    """Best-of-``reps`` wall time and the last result."""
    best, result = float("inf"), None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def main() -> int:
    problem = build_problem()
    sigma = problem.table_size
    print(
        f"instance {FAMILY} m={M} n={N} seed={SEED} k={K}: "
        f"sigma={sigma} configs={len(problem.configurations())} "
        f"levels={len(build_level_arrays(problem.dims))}"
    )

    seq = solve_table(problem)
    reference = compute_table(problem, 1, "numpy-serial")
    opt_ref = seq.opt
    print(f"solve_table OPT={opt_ref}")

    runs: list[dict] = []

    def record(backend: str, workers: int, elapsed: float, table) -> None:
        if isinstance(table, np.ndarray):
            assert np.array_equal(table, reference), (backend, workers)
        else:
            assert table == table_to_optional(reference), (backend, workers)
        runs.append(
            {
                "backend": backend,
                "workers": workers,
                "seconds": round(elapsed, 6),
                "states_per_sec": round((sigma - 1) / elapsed, 1),
            }
        )
        print(
            f"{backend:>14} w={workers}: {elapsed * 1e3:8.1f} ms "
            f"({(sigma - 1) / elapsed:12.0f} states/s)"
        )

    for w in THREAD_WORKERS:
        elapsed, table = timed(lambda w=w: legacy_thread_sweep(problem, w))
        record("legacy-thread", w, elapsed, table)

    elapsed, table = timed(lambda: compute_table(problem, 1, "numpy-serial"))
    record("numpy-serial", 1, elapsed, table)
    elapsed, table = timed(lambda: compute_table(problem, 1, "serial"))
    record("serial", 1, elapsed, table)

    for w in THREAD_WORKERS:
        elapsed, table = timed(lambda w=w: compute_table(problem, w, "thread"))
        record("thread", w, elapsed, table)

    kernel = LevelKernel.for_problem(problem)
    for w in PROCESS_WORKERS:
        ex = make_executor("process", w, reuse=True)
        try:
            # Warm the pool once so spawn cost is not in the timing —
            # exactly what the persistent pool buys the bisection driver.
            compute_table(problem, w, "process", executor=ex, kernel=kernel)
            elapsed, table = timed(
                lambda w=w: compute_table(
                    problem, w, "process", executor=ex, kernel=kernel
                ),
                reps=1,
            )
        finally:
            ex.close()
            shutdown_pools()
        record("process", w, elapsed, table)

    by_key = {(r["backend"], r["workers"]): r["states_per_sec"] for r in runs}
    ratios = {
        w: by_key[("thread", w)] / by_key[("legacy-thread", w)]
        for w in THREAD_WORKERS
    }
    for w, ratio in ratios.items():
        print(f"kernel/legacy thread speedup @ w={w}: {ratio:.1f}x")

    # Traced numpy-serial fill: how much of the DP wall time the
    # per-level spans account for (observability coverage figure).
    tracer = Tracer()
    parallel_dp(
        problem,
        1,
        "numpy-serial",
        track_schedule=False,
        ctx=SolveContext(tracer=tracer),
    )
    summary = tracer.phase_summary()
    dp_seconds = float(summary["dp"]["seconds"])
    level_seconds = float(summary["level"]["seconds"])
    level_share = level_seconds / dp_seconds if dp_seconds else 0.0
    trace_stats = {
        "dp_seconds": round(dp_seconds, 6),
        "level_seconds": round(level_seconds, 6),
        "level_share": round(level_share, 4),
        "num_levels": int(summary["level"]["count"]),
    }
    print(
        f"traced numpy-serial: level spans cover {level_share:.1%} of the "
        f"dp span across {trace_stats['num_levels']} levels"
    )
    assert level_share >= 0.8, (
        f"level spans cover only {level_share:.1%} of dp time — "
        "wavefront instrumentation regressed"
    )

    payload = {
        "benchmark": "wavefront kernel states/sec",
        "instance": {
            "family": FAMILY,
            "m": M,
            "n": N,
            "seed": SEED,
            "k": K,
            "target": problem.target,
            "sigma": sigma,
            "num_configs": len(problem.configurations()),
            "opt": opt_ref,
        },
        "runs": runs,
        "thread_kernel_over_legacy": {
            str(w): round(r, 2) for w, r in ratios.items()
        },
        "trace": trace_stats,
    }
    # Merge rather than overwrite: bench_store.py tracks its tiers in
    # the same file under keys this benchmark does not own.
    existing = json.loads(OUTPUT.read_text()) if OUTPUT.exists() else {}
    existing.update(payload)
    OUTPUT.write_text(json.dumps(existing, indent=2) + "\n")
    print(f"wrote {OUTPUT}")

    worst = min(ratios.values())
    if worst < MIN_SPEEDUP:
        print(
            f"FAIL: kernel thread backend only {worst:.2f}x the legacy "
            f"pure-Python thread backend (required >= {MIN_SPEEDUP}x)"
        )
        return 1
    print(f"OK: kernel >= {MIN_SPEEDUP}x legacy on the thread backend")
    return 0


if __name__ == "__main__":
    sys.exit(main())
