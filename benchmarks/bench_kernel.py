"""Wavefront kernel benchmark: states/sec per backend × worker count.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_kernel.py                   # full
    PYTHONPATH=src python benchmarks/bench_kernel.py --check-baseline  # CI gate

Solves one Figure-3-scale DP probe — the ``u_10n`` family at ``m=10,
n=50`` (seed 0), target at the Eq. 1 lower bound (the hardest probe of
the bisection), accuracy parameter ``k=5`` so the table is large enough
(sigma ~25k states) that per-sweep timing is dominated by the recurrence
rather than by pool startup — and times:

* ``legacy-thread`` — the seed's pure-Python per-state loop (the old
  ``_compute_states`` worker, preserved verbatim below as the baseline)
  on the thread backend;
* the vectorized :class:`~repro.core.kernels.LevelKernel` on every
  backend (numpy-serial, serial, thread, process), tile-diagonal
  ``runs`` schedule where the backend supports it;
* the **modeled** tile-diagonal schedule on the calibrated
  :class:`~repro.simcore.machine.SimulatedMachine` at 1/2/4 workers.

Every timed run is checked bit-identical to the reference table and
asserted to reach the same OPT as :func:`repro.core.dp.solve_table`.

Gates (hard — non-zero exit on failure):

* kernel thread backend ≥ 3x the legacy thread backend at every worker
  count (the vectorization win must not regress);
* **modeled speedup at 4 workers ≥ 2x** and modeled throughput monotone
  non-decreasing across 1 → 2 → 4 workers.  The paper's own Figure 3 is
  produced on this simulator; this container exposes a single usable
  CPU, so the simulator — calibrated against the *measured* numpy-serial
  wall time — is the honest substrate for the multi-worker claim.  When
  the host actually has ≥ 4 usable CPUs the measured gate activates too:
  thread @ 4 workers must beat numpy-serial by ≥ 2x wall clock.
* ``--check-baseline`` recomputes the (deterministic) modeled speedups
  and fails if any fell below the recorded ``BENCH_dp.json`` baseline by
  more than the tolerance — the CI regression tripwire for the planner
  and the cost model.

Results land under the ``"wavefront"`` section of ``BENCH_dp.json`` at
the repo root, each run stamped with the instance fingerprint and its
backend configuration (:mod:`repro.io.benchjson`), so stale entries from
another instance or backend matrix cannot masquerade as current.

A final traced run records the per-level span breakdown of one
numpy-serial table fill and asserts the ``level`` spans cover ≥ 80% of
the ``dp`` span — the observability layer's coverage figure.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import numpy as np

from repro.core.bounds import makespan_bounds
from repro.core.context import SolveContext
from repro.core.dp import DPProblem, solve_table
from repro.core.kernels import LevelKernel, build_level_arrays, table_to_optional
from repro.core.parallel_dp import compute_table, parallel_dp
from repro.core.rounding import round_instance
from repro.io.benchjson import instance_fingerprint, load_bench, merge_runs, update_section
from repro.obs import Tracer
from repro.parallel.cpus import usable_cpus
from repro.parallel.executor import ThreadExecutor, make_executor, shutdown_pools
from repro.parallel.partition import round_robin_partition
from repro.simcore.machine import SimulatedMachine
from repro.workloads.generator import make_instance

FAMILY, M, N, SEED = "u_10n", 10, 50, 0
K = 5
THREAD_WORKERS = (1, 2, 4)
PROCESS_WORKERS = (2,)
MODEL_WORKERS = (1, 2, 4)
REPS = 2
#: Kernel-vs-legacy floor (vectorization win).
MIN_SPEEDUP = 3.0
#: Modeled parallel-vs-serial floor at the widest worker count.
MODEL_MIN_SPEEDUP = 2.0
#: ``--check-baseline``: fresh modeled speedup must be ≥ baseline × this.
BASELINE_TOLERANCE = 0.9
SECTION = "wavefront"
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_dp.json"

#: Fields identifying one run configuration within the section.
RUN_KEY = ("backend", "workers", "schedule")


def build_problem() -> DPProblem:
    """The Figure-3-scale probe described in the module docstring."""
    inst = make_instance(FAMILY, M, N, seed=SEED)
    target = makespan_bounds(inst).lower
    rounded = round_instance(inst, target, K)
    return DPProblem(
        rounded.class_sizes, rounded.class_counts, target, job_cap=K - 1
    )


def instance_descriptor(problem: DPProblem) -> dict:
    """What the fingerprint covers: everything that shapes the probe."""
    return {
        "family": FAMILY,
        "m": M,
        "n": N,
        "seed": SEED,
        "k": K,
        "target": problem.target,
        "sigma": problem.table_size,
        "num_configs": len(problem.configurations()),
    }


def legacy_thread_sweep(problem: DPProblem, num_workers: int):
    """The seed's thread backend: per-state pure-Python loop with the
    ``None`` sentinel, one chunk per worker per level.  Kept here (only)
    as the benchmark baseline after the kernel replaced it in
    :mod:`repro.core.parallel_dp`."""
    dims = problem.dims
    strides = problem.strides()
    configs = problem.configurations().configs
    offsets = [
        sum(s * st for s, st in zip(cfg, strides)) for cfg in configs
    ]
    table: list[int | None] = [None] * problem.table_size
    table[0] = 0
    d = len(dims)

    def compute_states(chunk) -> None:
        for flat in chunk:
            flat = int(flat)
            if flat == 0:
                continue
            v = tuple((flat // strides[i]) % dims[i] for i in range(d))
            best: int | None = None
            for cfg, offset in zip(configs, offsets):
                if all(cfg[i] <= v[i] for i in range(d)):
                    prev = table[flat - offset]
                    if prev is not None and (best is None or prev < best):
                        best = prev
            table[flat] = None if best is None else best + 1

    levels = build_level_arrays(dims)
    with ThreadExecutor(num_workers) as ex:
        for level in levels[1:]:
            chunks = round_robin_partition(list(level), num_workers)
            ex.map_chunks(compute_states, chunks)
    return table


def timed(fn, reps: int = REPS):
    """Best-of-``reps`` wall time and the last result."""
    best, result = float("inf"), None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def modeled_speedups(problem: DPProblem, reference: np.ndarray) -> dict[int, float]:
    """Deterministic modeled speedups of the tile-diagonal schedule at
    each worker count (default plan: 2×workers blocks, static cost
    model).  The table is re-checked bit-identical on every run — the
    simulator executes the real kernel, it only *accounts* differently."""
    speedups: dict[int, float] = {}
    for w in MODEL_WORKERS:
        machine = SimulatedMachine(w)
        table = compute_table(
            problem, w, "simulated", machine=machine, schedule="runs"
        )
        assert np.array_equal(table, reference), ("simulated", w)
        speedups[w] = machine.speedup
    return speedups


def check_model_gate(speedups: dict[int, float]) -> list[str]:
    """The modeled-speedup gate: ≥ 2x at the widest count, monotone."""
    failures = []
    widest = max(MODEL_WORKERS)
    if speedups[widest] < MODEL_MIN_SPEEDUP:
        failures.append(
            f"modeled speedup at {widest} workers is {speedups[widest]:.2f}x "
            f"(required >= {MODEL_MIN_SPEEDUP}x)"
        )
    ordered = [speedups[w] for w in sorted(speedups)]
    if any(b < a - 1e-9 for a, b in zip(ordered, ordered[1:])):
        failures.append(
            f"modeled throughput is not monotone across workers: "
            f"{[round(s, 3) for s in ordered]}"
        )
    return failures


def check_baseline() -> int:
    """CI mode: recompute modeled speedups, compare against the recorded
    baseline (no measured runs — fully deterministic, seconds to run)."""
    problem = build_problem()
    reference = compute_table(problem, 1, "numpy-serial")
    fingerprint = instance_fingerprint(instance_descriptor(problem))
    speedups = modeled_speedups(problem, reference)
    for w in sorted(speedups):
        print(f"modeled speedup @ w={w}: {speedups[w]:.3f}x")

    failures = check_model_gate(speedups)

    section = load_bench(OUTPUT).get(SECTION)
    if section is None:
        failures.append(f"no {SECTION!r} section in {OUTPUT} — run the full benchmark first")
    elif section.get("fingerprint") != fingerprint:
        failures.append(
            f"baseline fingerprint {section.get('fingerprint')!r} does not match "
            f"current instance {fingerprint!r} — re-record the baseline"
        )
    else:
        baseline = section.get("modeled_speedups", {})
        for w in sorted(speedups):
            base = baseline.get(str(w))
            if base is None:
                failures.append(f"baseline has no modeled speedup for {w} workers")
                continue
            floor = base * BASELINE_TOLERANCE
            if speedups[w] < floor:
                failures.append(
                    f"modeled speedup @ w={w} regressed: {speedups[w]:.3f}x < "
                    f"{floor:.3f}x (baseline {base:.3f}x × tolerance {BASELINE_TOLERANCE})"
                )
    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print(f"OK: modeled speedups hold the {OUTPUT.name} baseline")
    return 0


def main() -> int:
    problem = build_problem()
    sigma = problem.table_size
    descriptor = instance_descriptor(problem)
    fingerprint = instance_fingerprint(descriptor)
    print(
        f"instance {FAMILY} m={M} n={N} seed={SEED} k={K}: "
        f"sigma={sigma} configs={descriptor['num_configs']} "
        f"levels={len(build_level_arrays(problem.dims))} "
        f"fingerprint={fingerprint}"
    )

    seq = solve_table(problem)
    reference = compute_table(problem, 1, "numpy-serial")
    opt_ref = seq.opt
    print(f"solve_table OPT={opt_ref}")

    runs: list[dict] = []

    def record(
        backend: str, workers: int, elapsed: float, table, *,
        schedule: str = "runs", **extra,
    ) -> None:
        if isinstance(table, np.ndarray):
            assert np.array_equal(table, reference), (backend, workers)
        elif table is not None:
            assert table == table_to_optional(reference), (backend, workers)
        runs.append(
            {
                "backend": backend,
                "workers": workers,
                "schedule": schedule,
                "seconds": round(elapsed, 6),
                "states_per_sec": round((sigma - 1) / elapsed, 1),
                **extra,
            }
        )
        print(
            f"{backend:>14} w={workers}: {elapsed * 1e3:8.1f} ms "
            f"({(sigma - 1) / elapsed:12.0f} states/s)"
        )

    for w in THREAD_WORKERS:
        elapsed, table = timed(lambda w=w: legacy_thread_sweep(problem, w))
        record("legacy-thread", w, elapsed, table, schedule="levels")

    serial_elapsed, table = timed(lambda: compute_table(problem, 1, "numpy-serial"))
    record("numpy-serial", 1, serial_elapsed, table, schedule="levels")
    elapsed, table = timed(lambda: compute_table(problem, 1, "serial"))
    record("serial", 1, elapsed, table)

    for w in THREAD_WORKERS:
        elapsed, table = timed(lambda w=w: compute_table(problem, w, "thread"))
        record("thread", w, elapsed, table)

    kernel = LevelKernel.for_problem(problem)
    for w in PROCESS_WORKERS:
        ex = make_executor("process", w, reuse=True)
        try:
            # Warm the pool once so spawn cost is not in the timing —
            # exactly what the persistent pool buys the bisection driver.
            compute_table(problem, w, "process", executor=ex, kernel=kernel)
            elapsed, table = timed(
                lambda w=w: compute_table(
                    problem, w, "process", executor=ex, kernel=kernel
                ),
                reps=1,
            )
        finally:
            ex.close()
            shutdown_pools()
        record("process", w, elapsed, table)

    # Modeled runs: the simulator re-executes the real kernel under the
    # tile-diagonal schedule and accounts ops; calibration against the
    # measured numpy-serial wall time converts them to seconds.
    speedups: dict[int, float] = {}
    for w in MODEL_WORKERS:
        machine = SimulatedMachine(w)
        table = compute_table(
            problem, w, "simulated", machine=machine, schedule="runs"
        )
        speedups[w] = machine.speedup
        calibrated = machine.calibrate(serial_elapsed)
        record(
            "simulated", w, calibrated.parallel_seconds, table,
            modeled=True, speedup=round(machine.speedup, 3),
        )

    by_key = {(r["backend"], r["workers"]): r["states_per_sec"] for r in runs}
    ratios = {
        w: by_key[("thread", w)] / by_key[("legacy-thread", w)]
        for w in THREAD_WORKERS
    }
    for w, ratio in ratios.items():
        print(f"kernel/legacy thread speedup @ w={w}: {ratio:.1f}x")
    for w in MODEL_WORKERS:
        print(f"modeled tile-diagonal speedup @ w={w}: {speedups[w]:.3f}x")

    failures: list[str] = []
    worst = min(ratios.values())
    if worst < MIN_SPEEDUP:
        failures.append(
            f"kernel thread backend only {worst:.2f}x the legacy "
            f"pure-Python thread backend (required >= {MIN_SPEEDUP}x)"
        )
    failures.extend(check_model_gate(speedups))

    # Measured gate — only meaningful when the host can actually run 4
    # workers; this container exposes one usable CPU, where wall-clock
    # parity is the ceiling and the calibrated model carries the claim.
    cpus = usable_cpus()
    measured_gate_active = cpus >= max(THREAD_WORKERS)
    if measured_gate_active:
        measured_ratio = (
            by_key[("thread", max(THREAD_WORKERS))] / by_key[("numpy-serial", 1)]
        )
        print(
            f"measured thread @ w={max(THREAD_WORKERS)} vs numpy-serial: "
            f"{measured_ratio:.2f}x ({cpus} usable CPUs)"
        )
        if measured_ratio < MODEL_MIN_SPEEDUP:
            failures.append(
                f"measured thread speedup at {max(THREAD_WORKERS)} workers is "
                f"{measured_ratio:.2f}x (required >= {MODEL_MIN_SPEEDUP}x "
                f"on a {cpus}-CPU host)"
            )
    skip_reason = None
    if not measured_gate_active:
        skip_reason = (
            f"{cpus} usable CPU(s) < {max(THREAD_WORKERS)} workers"
        )
        print(f"measured gate skipped ({cpus} usable cpus)")
        print(
            f"measured multi-worker gate inactive: {skip_reason} "
            "(modeled gate carries the claim)"
        )

    # Traced numpy-serial fill: how much of the DP wall time the
    # per-level spans account for (observability coverage figure).
    tracer = Tracer()
    parallel_dp(
        problem,
        1,
        "numpy-serial",
        track_schedule=False,
        ctx=SolveContext(tracer=tracer),
    )
    summary = tracer.phase_summary()
    dp_seconds = float(summary["dp"]["seconds"])
    level_seconds = float(summary["level"]["seconds"])
    level_share = level_seconds / dp_seconds if dp_seconds else 0.0
    trace_stats = {
        "dp_seconds": round(dp_seconds, 6),
        "level_seconds": round(level_seconds, 6),
        "level_share": round(level_share, 4),
        "num_levels": int(summary["level"]["count"]),
    }
    print(
        f"traced numpy-serial: level spans cover {level_share:.1%} of the "
        f"dp span across {trace_stats['num_levels']} levels"
    )
    if level_share < 0.8:
        failures.append(
            f"level spans cover only {level_share:.1%} of dp time — "
            "wavefront instrumentation regressed"
        )

    previous = load_bench(OUTPUT).get(SECTION, {})
    payload = {
        "benchmark": "wavefront kernel states/sec",
        "fingerprint": fingerprint,
        "instance": {**descriptor, "opt": opt_ref},
        "runs": merge_runs(
            previous.get("runs"), runs, fingerprint, key_fields=RUN_KEY
        ),
        "modeled_speedups": {str(w): round(s, 3) for w, s in speedups.items()},
        "thread_kernel_over_legacy": {
            str(w): round(r, 2) for w, r in ratios.items()
        },
        "gate": {
            "model_min_speedup": MODEL_MIN_SPEEDUP,
            "measured_gate_active": measured_gate_active,
            "skip_reason": skip_reason,
            "usable_cpus": cpus,
            "baseline_tolerance": BASELINE_TOLERANCE,
        },
        "trace": trace_stats,
    }
    # One section of the shared file: bench_store.py owns its own.
    update_section(OUTPUT, SECTION, payload)
    print(f"wrote {SECTION!r} section of {OUTPUT}")

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print(
        f"OK: kernel >= {MIN_SPEEDUP}x legacy, modeled tile-diagonal "
        f">= {MODEL_MIN_SPEEDUP}x serial at {max(MODEL_WORKERS)} workers"
    )
    return 0


if __name__ == "__main__":
    if "--check-baseline" in sys.argv[1:]:
        sys.exit(check_baseline())
    sys.exit(main())
