"""Ablation benchmark: sensitivity of simulated speedup to the cost model.

DESIGN.md §6 calls out the two knobs that shape the paper's speedup
curves: per-state compute (configuration enumeration) versus per-level
synchronization (barrier).  This ablation sweeps both and checks the
expected monotonic responses — heavier compute helps scalability, heavier
barriers hurt it — plus the structural claim that speedup saturates when
anti-diagonals are narrower than the processor count.
"""

from __future__ import annotations

import pytest

from repro.core.dp import DPProblem
from repro.core.parallel_dp import parallel_dp
from repro.simcore.costmodel import CostModel
from repro.simcore.machine import SimulatedMachine
from repro.workloads.generator import make_instance
from repro.core.bounds import makespan_bounds
from repro.core.rounding import round_instance


def _wide_problem() -> DPProblem:
    inst = make_instance("u_10n", 10, 30, seed=3)
    target = makespan_bounds(inst).midpoint()
    r = round_instance(inst, target, 4)
    return DPProblem(r.class_sizes, r.class_counts, target)


def _speedup(problem: DPProblem, workers: int, model: CostModel) -> float:
    machine = SimulatedMachine(workers, model, record_traces=False)
    parallel_dp(
        problem, workers, "simulated", machine=machine, cost_model=model,
        track_schedule=False,
    )
    return machine.speedup


def test_barrier_cost_degrades_speedup(benchmark):
    problem = _wide_problem()
    speedups = []
    for barrier in (0.0, 50.0, 500.0, 5000.0):
        model = CostModel(barrier_ops=barrier)
        speedups.append(_speedup(problem, 16, model))
    benchmark.pedantic(
        _speedup, args=(problem, 16, CostModel()), rounds=1, iterations=1
    )
    assert speedups == sorted(speedups, reverse=True), speedups
    assert speedups[0] / speedups[-1] > 1.05


def test_enumeration_weight_improves_speedup(benchmark):
    problem = _wide_problem()

    def sweep() -> list[float]:
        return [
            _speedup(
                problem,
                16,
                CostModel(config_enumeration_factor=f, barrier_ops=50.0),
            )
            for f in (1.0, 5.0, 25.0, 100.0)
        ]

    speedups = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert speedups == sorted(speedups), speedups


def test_saturation_when_levels_narrower_than_p(benchmark):
    """A one-dimensional DP table has q_l = 1 everywhere: adding
    processors cannot help (the paper's scalability limit)."""
    narrow = DPProblem((7,), (30,), 20)
    s4 = benchmark.pedantic(
        _speedup, args=(narrow, 4, CostModel()), rounds=1, iterations=1
    )
    s16 = _speedup(narrow, 16, CostModel())
    assert s4 <= 1.05
    assert abs(s16 - s4) < 0.1


def test_speedup_monotone_in_processors_on_wide_table(benchmark):
    problem = _wide_problem()
    model = CostModel()

    def sweep() -> list[float]:
        return [_speedup(problem, p, model) for p in (1, 2, 4, 8, 16)]

    speedups = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert speedups[0] == pytest.approx(1.0)
    for lo, hi in zip(speedups, speedups[1:]):
        assert hi >= lo * 0.99
