"""Benchmark: parallel DP backends head-to-head on one real problem.

Measures the wall time of each backend at 2 workers.  On this
single-core reproduction host the expectation is inverted from
production: serial is fastest, threads pay the GIL, processes pay the
pool spin-up — the point of the bench is to document those constants
honestly next to the simulated numbers (EXPERIMENTS.md, deviation 4).
"""

from __future__ import annotations

import pytest

from repro.core.bounds import makespan_bounds
from repro.core.dp import DPProblem
from repro.core.parallel_dp import parallel_dp
from repro.core.rounding import round_instance
from repro.workloads.generator import make_instance


def _problem() -> DPProblem:
    inst = make_instance("u_10n", 10, 30, seed=1)
    target = makespan_bounds(inst).midpoint()
    r = round_instance(inst, target, 4)
    return DPProblem(r.class_sizes, r.class_counts, target)


PROBLEM = _problem()
REFERENCE = parallel_dp(PROBLEM, 1, "serial", track_schedule=False)


@pytest.mark.parametrize("backend", ["serial", "thread", "simulated"])
def test_backend_wall_time(benchmark, backend):
    benchmark.group = "parallel-dp-backends"
    result = benchmark(
        parallel_dp, PROBLEM, 2, backend, track_schedule=False
    )
    assert result.opt == REFERENCE.opt


@pytest.mark.slow
def test_process_backend_wall_time(benchmark):
    benchmark.group = "parallel-dp-backends"
    result = benchmark.pedantic(
        parallel_dp,
        args=(PROBLEM, 2, "process"),
        kwargs={"track_schedule": False},
        rounds=1,
        iterations=1,
    )
    assert result.opt == REFERENCE.opt
