"""Benchmark: Figure 3 — m=10, n=50, the paper's best case vs IP.

The paper's headline here: for U(1, 10n) instances the IP solver needs
orders of magnitude more time than the parallel algorithm (CPLEX ~105 s
vs 0.1 s → ~800x).  We assert the same *shape*: U(1, 10n) exhibits the
largest (or near-largest) speedup vs IP among the four families, and the
ratios are large in absolute terms.
"""

from __future__ import annotations

from conftest import save_panel

from repro.experiments.figures import run_figure3


def test_figure3(benchmark, scale, results_dir):
    fig = benchmark.pedantic(
        run_figure3, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    save_panel(results_dir, "figure3", fig.render())

    max_cores = max(fig.cores)
    by_family = {
        fam.family_key: fam.mean_speedup_vs_ip(max_cores) for fam in fig.families
    }
    # Every family beats the MILP at 16 cores.
    assert all(v > 1.0 for v in by_family.values()), by_family
    # The parallel algorithm achieves a large advantage on at least one
    # family (the paper's 800x claim; two orders of magnitude here).
    assert max(by_family.values()) > 100.0, by_family

    for fam in fig.families:
        speedups = [fam.mean_speedup_vs_ptas(c) for c in fig.cores]
        for lo, hi in zip(speedups, speedups[1:]):
            assert hi >= lo * 0.95
        # PTAS quality: within the guarantee of anything LPT achieves
        # (PTAS <= 1.3*OPT <= 1.3*LPT; the paper reports PTAS at most
        # 0.13 worse than LPT in its worst cases).
        for record in fam.records:
            assert record.sequential.makespan <= record.lpt_run.makespan * 1.3
