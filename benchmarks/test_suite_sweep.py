"""Benchmark: algorithm quality sweep over the ratio suite.

Runs the cheap algorithms (LPT, LPT+local search, MULTIFIT, PTAS with
the optimized engine) across the ``paper-ratio`` suite and reports mean
actual approximation ratios against the branch-and-bound optimum — the
library-wide quality scoreboard.
"""

from __future__ import annotations

from conftest import save_panel

from repro.algorithms.local_search import lpt_with_local_search
from repro.algorithms.lpt import lpt
from repro.algorithms.multifit import multifit
from repro.core.ptas import ptas
from repro.exact.branch_and_bound import branch_and_bound
from repro.experiments.metrics import mean
from repro.experiments.reporting import ascii_table
from repro.workloads.suites import suite


def test_quality_scoreboard(benchmark, scale, results_dir):
    items = list(suite("paper-ratio"))
    if scale != "paper":
        items = items[::5]  # one replicate per (kind, size) cell

    def sweep():
        ratios: dict[str, list[float]] = {
            "LPT": [],
            "LPT+LS": [],
            "MULTIFIT": [],
            "PTAS(0.3)": [],
        }
        solved = 0
        for item in items:
            exact = branch_and_bound(item.instance, node_budget=2_000_000)
            if not exact.optimal:
                continue
            solved += 1
            opt = exact.makespan
            ratios["LPT"].append(lpt(item.instance).makespan / opt)
            ratios["LPT+LS"].append(
                lpt_with_local_search(item.instance).makespan / opt
            )
            ratios["MULTIFIT"].append(multifit(item.instance).makespan / opt)
            ratios["PTAS(0.3)"].append(ptas(item.instance, 0.3).makespan / opt)
        return solved, ratios

    solved, ratios = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert solved >= len(items) * 0.6, "too few instances solved exactly"

    rows = [
        [name, mean(vals), max(vals)] for name, vals in ratios.items()
    ]
    panel = ascii_table(
        ["algorithm", "mean ratio", "worst ratio"],
        rows,
        title=f"Quality scoreboard over paper-ratio suite ({solved} instances)",
    )
    save_panel(results_dir, "quality_scoreboard", panel)

    # Guarantees hold instance-wise.
    assert max(ratios["LPT"]) <= 4 / 3 + 1e-9
    assert max(ratios["PTAS(0.3)"]) <= 1.3 + 1e-9
    # Local search never hurts LPT.
    assert mean(ratios["LPT+LS"]) <= mean(ratios["LPT"]) + 1e-9
