"""Benchmark: Tables II and III — best/worst instances by actual ratio.

Asserts the selection procedure reproduces the paper's findings:

* in the best cases the parallel PTAS's ratio is well under its 1.3
  guarantee (paper: under 1.1) and beats LPT by a visible margin
  (paper: up to 0.28);
* in the worst cases LPT is at most slightly ahead (paper: at most
  0.13);
* LS never beats LPT on these selected instances' ratios by more than
  noise (the paper: LS is the worst of all algorithms).
"""

from __future__ import annotations

from conftest import save_panel

from repro.experiments.tables import run_table2, run_table3


def test_table2_best_cases(benchmark, scale, results_dir):
    table = benchmark.pedantic(
        run_table2, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    save_panel(results_dir, "table2", table.render())
    assert len(table.records) == 6
    top = table.records[0]
    # The best case shows a clear PTAS advantage over LPT.
    assert top.lpt_gap > 0.0
    # Paper: best-case PTAS ratios stay under 1.1 (all under the 1.3
    # guarantee by a wide margin).
    for r in table.records[:3]:
        assert r.ratio_parallel < 1.15, r
    # Records are sorted by the selection key.
    gaps = [r.lpt_gap for r in table.records]
    assert gaps == sorted(gaps, reverse=True)


def test_table3_worst_cases(benchmark, scale, results_dir):
    table = benchmark.pedantic(
        run_table3, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    save_panel(results_dir, "table3", table.render())
    assert len(table.records) == 6
    # Paper: even in the worst cases LPT's advantage is small (0.13 in
    # their sample; bounded by eps=0.3 structurally since the PTAS stays
    # within 1.3 OPT and LPT is at least 1.0), and everything stays
    # within the 1.3 guarantee when the reference optimum is proven.
    for r in table.records:
        if r.ip_optimal:
            assert r.ratio_parallel <= 1.3 + 1e-9, r
            assert r.lpt_gap >= -0.30 - 1e-9, r
    gaps = [r.lpt_gap for r in table.records]
    assert gaps == sorted(gaps)
