"""Ablation benchmark: DP engine comparison (DESIGN.md §7).

Quantifies why the optimized ``dominance`` engine is the default for the
public API while the faithful ``table`` sweep is used for fidelity: on
the paper's own instance families the dominance engine does an order of
magnitude fewer configuration scans.
"""

from __future__ import annotations

import pytest

from repro.core.bounds import makespan_bounds
from repro.core.dp import DPProblem, solve
from repro.core.rounding import round_instance
from repro.workloads.generator import make_instance

ENGINES = ("table", "frontier", "dominance", "numpy")


def _problem(kind: str, m: int, n: int, seed: int = 0) -> DPProblem:
    inst = make_instance(kind, m, n, seed=seed)
    target = makespan_bounds(inst).midpoint()
    r = round_instance(inst, target, 4)
    return DPProblem(r.class_sizes, r.class_counts, target)


PROBLEMS = {
    "u_100_m10_n30": _problem("u_100", 10, 30),
    "u_10n_m10_n30": _problem("u_10n", 10, 30),
    "lpt_adv_m10": _problem("lpt_adversarial", 10, 21),
}


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("problem_name", sorted(PROBLEMS))
def test_engine_speed(benchmark, engine, problem_name):
    problem = PROBLEMS[problem_name]
    benchmark.group = f"dp-{problem_name}"
    result = benchmark(
        solve, problem, engine, track_schedule=False
    )
    reference = solve(problem, "table", track_schedule=False)
    assert result.opt == reference.opt


def test_dominance_scan_reduction(benchmark):
    """The headline ablation number: dominance needs far fewer scans.

    (Wall-clock can still favour the table sweep on small tables — the
    Pareto pruning is quadratic in the frontier — which is why both
    engines exist; the scan counts show where dominance wins as tables
    grow.)
    """

    def measure() -> dict[str, float]:
        out: dict[str, float] = {}
        for name, problem in PROBLEMS.items():
            full = solve(problem, "table", track_schedule=False, collect_stats=True)
            dom = solve(
                problem, "dominance", track_schedule=False, collect_stats=True
            )
            assert full.stats is not None and dom.stats is not None
            out[name] = full.stats.config_scans / max(dom.stats.config_scans, 1)
        return out

    reductions = benchmark.pedantic(measure, rounds=1, iterations=1)
    for name, reduction in reductions.items():
        assert reduction > 2.0, (
            f"{name}: dominance reduced scans only {reduction:.1f}x"
        )
