"""Benchmark: Figure 4 — m=10, n=30, the paper's worst case vs IP.

Here CPLEX solved most families quickly, so the paper's speedup vs IP is
modest except for U(1, 10n).  The preservable shape: U(1, 10n) remains
clearly ahead of U(1, 2m-1) (the family the MILP handles best in our
setup too), and speedup vs the PTAS still scales with cores.
"""

from __future__ import annotations

from conftest import save_panel

from repro.experiments.figures import run_figure4


def test_figure4(benchmark, scale, results_dir):
    fig = benchmark.pedantic(
        run_figure4, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    save_panel(results_dir, "figure4", fig.render())

    # Panel (a): monotone scaling vs the sequential PTAS.
    for fam in fig.families:
        speedups = [fam.mean_speedup_vs_ptas(c) for c in fig.cores]
        for lo, hi in zip(speedups, speedups[1:]):
            assert hi >= lo * 0.95

    # Panel (b): the u_10n family dominates u_2m in speedup vs IP, as in
    # the paper (the MILP struggles most with wide processing-time
    # ranges).
    max_cores = max(fig.cores)
    by_family = {
        fam.family_key: fam.mean_speedup_vs_ip(max_cores) for fam in fig.families
    }
    assert by_family["u_10n"] > by_family["u_2m"], by_family

    # The figure omits panel (c) in the paper.
    assert "(c)" not in fig.render() or fig.include_runtime_panel is False
