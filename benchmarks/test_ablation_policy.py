"""Ablation benchmark: static round-robin vs dynamic self-scheduling.

Alg. 3 assigns a level's subproblems statically (iteration ``i`` to
processor ``i mod P``).  With the *per-state* cost fidelity (each state
pays for its own ``|C_v|`` enumeration), states near the table's origin
are much cheaper than states near ``N``, so static assignment leaves
processors unevenly loaded.  This ablation measures how much a dynamic
(self-scheduling / ``schedule(dynamic)``) policy recovers.
"""

from __future__ import annotations

import pytest

from repro.core.bounds import makespan_bounds
from repro.core.dp import DPProblem
from repro.core.parallel_dp import parallel_dp
from repro.core.rounding import round_instance
from repro.simcore.costmodel import CostModel
from repro.simcore.machine import SimulatedMachine
from repro.workloads.generator import make_instance


def _problem() -> DPProblem:
    inst = make_instance("lpt_adversarial", 10, 21, seed=2)
    target = makespan_bounds(inst).midpoint()
    r = round_instance(inst, target, 4)
    return DPProblem(r.class_sizes, r.class_counts, target)


def _parallel_ops(policy: str, workers: int) -> float:
    machine = SimulatedMachine(
        workers, CostModel(), assignment_policy=policy, record_traces=False
    )
    parallel_dp(
        _problem(),
        workers,
        "simulated",
        machine=machine,
        cost_fidelity="per_state",
        track_schedule=False,
    )
    return machine.parallel_ops


@pytest.mark.parametrize("policy", ["round_robin", "dynamic"])
def test_policy_cost(benchmark, policy):
    benchmark.group = "assignment-policy"
    ops = benchmark.pedantic(
        _parallel_ops, args=(policy, 16), rounds=1, iterations=1
    )
    assert ops > 0


def test_dynamic_recovers_imbalance(benchmark):
    def measure() -> tuple[float, float]:
        return _parallel_ops("round_robin", 16), _parallel_ops("dynamic", 16)

    rr, dyn = benchmark.pedantic(measure, rounds=1, iterations=1)
    # Dynamic self-scheduling of heterogeneous per-state costs is at
    # least as good as static round-robin here, and both are bounded by
    # the serial work.
    assert dyn <= rr * 1.001
