"""Ablation benchmark: speculative multi-probe bisection (DESIGN.md §7).

The paper leaves the bisection serial.  This ablation quantifies the
extension of :mod:`repro.core.speculative`: with ``g`` concurrent probes
per round the number of serial rounds drops like ``log_{g+1} W``, at the
price of ``g`` DPs of work per round (all but one speculative).  The
bench measures both the round count and the wall time of the probe work.
"""

from __future__ import annotations

import pytest

from repro.core.bisection import bisect_target_makespan
from repro.core.dp import DPProblem, DPResult, solve
from repro.core.speculative import count_rounds, speculative_bisect
from repro.workloads.generator import make_instance

INSTANCE = make_instance("u_10n", 10, 30, seed=5)


def solver(problem: DPProblem, m: int) -> DPResult:
    return solve(problem, "dominance", limit=m)


@pytest.mark.parametrize("branching", [1, 3, 7])
def test_speculative_probe_cost(benchmark, branching):
    benchmark.group = "speculative-bisection"
    outcome = benchmark(
        speculative_bisect, INSTANCE, 4, solver, branching
    )
    standard = bisect_target_makespan(INSTANCE, 4, solver)
    assert outcome.final_target == standard.final_target


def test_round_count_shrinks_with_branching(benchmark):
    def measure() -> dict[int, int]:
        return {
            g: count_rounds(speculative_bisect(INSTANCE, 4, solver, g), g)
            for g in (1, 3, 7)
        }

    rounds = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert rounds[3] <= rounds[1]
    assert rounds[7] <= rounds[3]
    # The probe *total* grows though — speculation trades work for rounds.
    probes = {
        g: len(speculative_bisect(INSTANCE, 4, solver, g).iterations)
        for g in (1, 7)
    }
    assert probes[7] >= probes[1]
