"""Benchmark: Table I — the worked DP example of §III.

Micro-benchmarks the sequential table sweep and the wavefront parallel DP
on the exact example the paper walks through (sizes 6 and 11, N=(2,3),
T=30), and regenerates the rendered table.
"""

from __future__ import annotations

from conftest import save_panel

from repro.core.dp import solve_table
from repro.core.parallel_dp import parallel_dp
from repro.experiments.tables import TABLE1_PROBLEM, run_table1


def test_table1_sequential_dp(benchmark):
    result = benchmark(solve_table, TABLE1_PROBLEM)
    assert result.opt == 2


def test_table1_parallel_dp_serial_backend(benchmark):
    result = benchmark(parallel_dp, TABLE1_PROBLEM, 4, "serial")
    assert result.opt == 2


def test_table1_parallel_dp_simulated_backend(benchmark):
    result = benchmark(parallel_dp, TABLE1_PROBLEM, 4, "simulated")
    assert result.opt == 2


def test_table1_regenerate(benchmark, results_dir):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    assert result.grid == (
        (0, 1, 1, 2),
        (1, 1, 1, 2),
        (1, 1, 2, 2),
    )
    save_panel(results_dir, "table1", result.render())
