"""Service throughput benchmark: single-process vs sharded solver pool.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_service.py                   # full
    PYTHONPATH=src python benchmarks/bench_service.py --check-baseline  # CI gate

Replays one seeded mixed workload — a deterministic draw over the
:mod:`repro.workloads` families with ~25% permuted duplicates, the twin
pattern real traffic produces — against two server configurations, each
launched as a real ``repro-pcmax serve`` subprocess and driven over TCP
with a fixed client concurrency:

* ``single`` — the one-process :class:`repro.service.SolveService`
  (solves share the supervisor's GIL);
* ``pool`` — ``--pool-workers auto`` (:mod:`repro.service.supervisor`),
  N = :func:`repro.parallel.cpus.usable_cpus` worker processes sharded
  by the canonical instance key.

Every returned schedule is re-verified with
:func:`repro.model.verify.verify_schedule`; a single unverifiable or
failed response fails the benchmark.  Requests/sec plus p50/p99 latency
land under the ``"service_throughput"`` section of ``BENCH_dp.json``
(one run per ``(mode, workers)`` configuration, fingerprint-stamped via
:mod:`repro.io.benchjson`).

Gate: pooled throughput must be ≥ 2x the single-process run — **armed
only when the host has ≥ 4 usable CPUs**.  On smaller hosts (this
container exposes one) the pool cannot beat one core by running N
copies of it, so the gate records a ``skip_reason`` instead of a
vacuous failure, exactly like the wavefront kernel's measured gate.

``--check-baseline`` is the CI tripwire and re-measures nothing (wall
clock in shared CI is noise): it checks the recorded section is present,
matches the current workload fingerprint, contains both configurations
fully verified, and — when the recording host had the gate armed — that
the recorded speedup met the floor.
"""

from __future__ import annotations

import asyncio
import os
import statistics
import subprocess
import sys
import time
from pathlib import Path

from repro.io.benchjson import instance_fingerprint, load_bench, merge_runs, update_section
from repro.model.schedule import Schedule
from repro.model.verify import verify_schedule
from repro.parallel.cpus import usable_cpus
from repro.service.requests import SolveRequest
from repro.service.server import replay, send_op
from repro.workloads.generator import make_instance

#: (family, machines, jobs, eps) strata of the replayed mix — small
#: enough that a full replay stays in seconds on one core, varied enough
#: that shard routing sees a spread of canonical keys.
MIX = (
    ("u_10", 4, 24, 0.2),
    ("u_100", 3, 18, 0.2),
    ("u_narrow", 4, 20, 0.25),
    ("lpt_adversarial", 3, 16, 0.3),
)
SEED = 0
NUM_REQUESTS = 48
#: Every 4th request re-submits an earlier instance with its times
#: permuted — the canonical-key twins that caching and shard routing
#: exist for.
DUPLICATE_EVERY = 4
CONCURRENCY = 8
#: Pooled throughput floor over single-process, when the gate is armed.
MIN_SPEEDUP = 2.0
#: CPUs below which the measured gate records a skip instead.
GATE_MIN_CPUS = 4
SECTION = "service_throughput"
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_dp.json"
RUN_KEY = ("mode", "workers")
REPO_ROOT = OUTPUT.parent


def build_workload() -> list[SolveRequest]:
    """The deterministic replayed mix (see module docstring)."""
    import random

    rng = random.Random(SEED)
    requests: list[SolveRequest] = []
    originals: list[SolveRequest] = []
    for i in range(NUM_REQUESTS):
        if originals and i % DUPLICATE_EVERY == DUPLICATE_EVERY - 1:
            base = rng.choice(originals)
            times = list(base.times)
            rng.shuffle(times)
            request = SolveRequest.from_dict(
                {**base.to_dict(), "times": times, "request_id": f"bench-{i}"}
            )
        else:
            family, machines, jobs, eps = MIX[i % len(MIX)]
            inst = make_instance(family, machines, jobs, seed=SEED + i)
            request = SolveRequest(
                times=tuple(inst.processing_times),
                machines=machines,
                engine="ptas",
                eps=eps,
                request_id=f"bench-{i}",
            )
            originals.append(request)
        requests.append(request)
    return requests


def workload_descriptor() -> dict:
    """What the fingerprint covers: everything that shapes the replay."""
    return {
        "mix": [list(stratum) for stratum in MIX],
        "seed": SEED,
        "num_requests": NUM_REQUESTS,
        "duplicate_every": DUPLICATE_EVERY,
        "concurrency": CONCURRENCY,
    }


def start_server(mode: str, workers: int) -> tuple[subprocess.Popen, int]:
    """Launch ``repro-pcmax serve`` on an ephemeral port and wait for
    its ready line; returns the process and the bound port."""
    cmd = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--host",
        "127.0.0.1",
        "--port",
        "0",
        "--log-interval",
        "0",
    ]
    if mode == "pool":
        cmd += ["--pool-workers", str(workers)]
    env = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}
    proc = subprocess.Popen(
        cmd,
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    assert proc.stdout is not None
    line = proc.stdout.readline()
    if "listening on" not in line:
        proc.kill()
        raise RuntimeError(f"server failed to start: {line!r}")
    port = int(line.split("listening on", 1)[1].split()[0].rsplit(":", 1)[1])
    return proc, port


def run_one(mode: str, workers: int, requests: list[SolveRequest]) -> dict:
    """Measure one server configuration over the full replay."""
    proc, port = start_server(mode, workers)
    try:
        # One warm-up round trip so startup cost stays out of the clock.
        asyncio.run(send_op("127.0.0.1", port, "ping"))
        t0 = time.perf_counter()
        outcomes = asyncio.run(
            replay("127.0.0.1", port, requests, concurrency=CONCURRENCY)
        )
        wall = time.perf_counter() - t0
        health = asyncio.run(send_op("127.0.0.1", port, "healthcheck"))
        asyncio.run(send_op("127.0.0.1", port, "shutdown"))
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
    if len(outcomes) != len(requests):
        raise RuntimeError(
            f"{mode}: {len(outcomes)}/{len(requests)} requests answered"
        )
    verified = cached = degraded = 0
    latencies = []
    for request, (result, latency) in zip(requests, outcomes):
        latencies.append(latency)
        if not result.ok or result.assignment is None:
            raise RuntimeError(f"{mode}: request {request.request_id} failed: {result.error}")
        report = verify_schedule(
            Schedule(request.instance(), result.assignment), request.instance()
        )
        report.raise_if_failed()
        verified += 1
        cached += int(result.cached)
        degraded += int(result.degraded)
    latencies.sort()
    pct = lambda p: latencies[min(len(latencies) - 1, int(p / 100 * len(latencies)))]  # noqa: E731
    return {
        "mode": mode,
        "workers": workers,
        "requests": len(requests),
        "verified": verified,
        "cached": cached,
        "degraded": degraded,
        "seconds": round(wall, 4),
        "rps": round(len(requests) / wall, 2),
        "latency_mean_ms": round(statistics.mean(latencies) * 1e3, 3),
        "latency_p50_ms": round(pct(50) * 1e3, 3),
        "latency_p99_ms": round(pct(99) * 1e3, 3),
        "healthy": bool(health.get("ok")),
    }


def main() -> int:
    cpus = usable_cpus()
    pool_workers = max(1, cpus)
    requests = build_workload()
    fingerprint = instance_fingerprint(workload_descriptor())
    print(
        f"replaying {len(requests)} requests (concurrency {CONCURRENCY}, "
        f"fingerprint {fingerprint}) on a {cpus}-CPU host"
    )

    runs = []
    for mode, workers in (("single", 1), ("pool", pool_workers)):
        run = run_one(mode, workers, requests)
        runs.append(run)
        print(
            f"{mode:6s} w={workers}: {run['rps']:8.1f} req/s  "
            f"p50={run['latency_p50_ms']:.2f}ms p99={run['latency_p99_ms']:.2f}ms  "
            f"({run['verified']} verified, {run['cached']} cached, "
            f"{run['degraded']} degraded)"
        )

    single_rps = runs[0]["rps"]
    pool_rps = runs[1]["rps"]
    speedup = pool_rps / single_rps if single_rps else 0.0
    gate_active = cpus >= GATE_MIN_CPUS
    skip_reason = None
    failures: list[str] = []
    if gate_active:
        print(f"pool vs single: {speedup:.2f}x (required >= {MIN_SPEEDUP}x)")
        if speedup < MIN_SPEEDUP:
            failures.append(
                f"pooled throughput only {speedup:.2f}x single-process "
                f"(required >= {MIN_SPEEDUP}x on a {cpus}-CPU host)"
            )
    else:
        skip_reason = f"{cpus} usable CPU(s) < {GATE_MIN_CPUS}"
        print(f"measured gate skipped ({cpus} usable cpus)")

    previous = load_bench(OUTPUT).get(SECTION, {})
    payload = {
        "benchmark": "service throughput (requests/sec), single vs pool",
        "fingerprint": fingerprint,
        "workload": workload_descriptor(),
        "runs": merge_runs(
            previous.get("runs"), runs, fingerprint, key_fields=RUN_KEY
        ),
        "speedup_pool_over_single": round(speedup, 3),
        "gate": {
            "min_speedup": MIN_SPEEDUP,
            "gate_active": gate_active,
            "skip_reason": skip_reason,
            "usable_cpus": cpus,
            "pool_workers": pool_workers,
        },
    }
    update_section(OUTPUT, SECTION, payload)
    print(f"wrote {SECTION!r} section of {OUTPUT}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK: all replies verified" + ("" if gate_active else " (gate skipped)"))
    return 0


def check_baseline() -> int:
    """CI tripwire over the recorded section — no re-measurement."""
    section = load_bench(OUTPUT).get(SECTION)
    failures: list[str] = []
    if not section:
        print(f"FAIL: no {SECTION!r} section in {OUTPUT}")
        return 1
    fingerprint = instance_fingerprint(workload_descriptor())
    if section.get("fingerprint") != fingerprint:
        failures.append(
            f"fingerprint {section.get('fingerprint')} != current "
            f"{fingerprint} — workload changed, re-run the benchmark"
        )
    runs = {
        (r.get("mode"), r.get("fingerprint") == fingerprint): r
        for r in section.get("runs", [])
    }
    for mode in ("single", "pool"):
        run = runs.get((mode, True))
        if run is None:
            failures.append(f"no current-fingerprint {mode!r} run recorded")
            continue
        if run.get("verified") != run.get("requests"):
            failures.append(
                f"{mode!r} run: {run.get('verified')}/{run.get('requests')} "
                "schedules verified"
            )
        if not run.get("healthy"):
            failures.append(f"{mode!r} run: healthcheck was not ok")
    gate = section.get("gate", {})
    if gate.get("gate_active"):
        speedup = section.get("speedup_pool_over_single", 0.0)
        if speedup < gate.get("min_speedup", MIN_SPEEDUP):
            failures.append(
                f"recorded speedup {speedup}x below the armed gate's "
                f"{gate.get('min_speedup')}x floor"
            )
    elif not gate.get("skip_reason"):
        failures.append("gate inactive but no skip_reason recorded")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"OK: {SECTION} baseline is structurally sound")
    return 0


if __name__ == "__main__":
    if "--check-baseline" in sys.argv[1:]:
        sys.exit(check_baseline())
    sys.exit(main())
