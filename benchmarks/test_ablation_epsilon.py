"""Ablation benchmark: the eps knob (accuracy vs cost vs parallelism).

The paper fixes ``eps = 0.3`` "to obtain an approximation ratio below
LPT's".  This ablation sweeps eps and records what that choice trades
away and buys:

* smaller eps → larger ``k`` → finer rounding classes → bigger DP tables
  (more work), but also *wider anti-diagonals* (more parallelism);
* the certified target tightens (monotonically) as eps shrinks;
* the a-priori guarantee crosses LPT's 4/3 exactly where the paper says
  it should (eps < 1/3).
"""

from __future__ import annotations

import pytest

from conftest import save_panel

from repro.core.ptas import parallel_ptas, ptas
from repro.experiments.reporting import ascii_table
from repro.workloads.generator import make_instance

INSTANCE = make_instance("u_10n", 6, 20, seed=4)
EPS_VALUES = (1.0, 0.5, 0.34, 0.3, 0.25)


@pytest.mark.parametrize("eps", EPS_VALUES)
def test_ptas_cost_at_eps(benchmark, eps):
    benchmark.group = "epsilon-sweep"
    result = benchmark(ptas, INSTANCE, eps, engine="table")
    assert result.schedule.is_valid()


def test_epsilon_tradeoffs(benchmark, results_dir):
    def measure():
        rows = []
        for eps in EPS_VALUES:
            seq = ptas(INSTANCE, eps, engine="table")
            par = parallel_ptas(INSTANCE, eps, num_workers=16)
            max_sigma = max(it.table_size for it in seq.outcome.iterations)
            rows.append(
                [
                    eps,
                    seq.k,
                    seq.final_target,
                    seq.makespan,
                    max_sigma,
                    par.simulated_speedup,
                ]
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    panel = ascii_table(
        ["eps", "k", "target", "makespan", "max sigma", "speedup@16"],
        rows,
        title="Epsilon ablation (u_10n m=6 n=20)",
    )
    save_panel(results_dir, "epsilon_ablation", panel)

    targets = [r[2] for r in rows]
    sigmas = [r[4] for r in rows]
    # Tighter eps never loosens the certified target ...
    assert targets == sorted(targets, reverse=True), targets
    # ... and grows the DP table (strictly, from k=1 to k=4).
    assert sigmas[0] <= sigmas[-1]
    assert max(sigmas) > min(sigmas)
    # The paper's guarantee rationale: eps=0.3 certifies below LPT's 4/3.
    assert 1.3 < 4 / 3
