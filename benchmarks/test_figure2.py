"""Benchmark: Figure 2 — speedups and runtimes at m=20, n=100.

Regenerates all three panels and asserts the paper's qualitative claims:

* the parallel algorithm's average speedup over the sequential PTAS
  grows monotonically from 2 to 16 cores and is substantial at 16;
* the parallel algorithm beats the IP solver's wall time;
* parallel and sequential makespans are identical (same schedule).
"""

from __future__ import annotations

from conftest import save_panel

from repro.experiments.figures import run_figure2


def test_figure2(benchmark, scale, results_dir):
    fig = benchmark.pedantic(
        run_figure2, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    save_panel(results_dir, "figure2", fig.render())

    cores = fig.cores
    for fam in fig.families:
        speedups = [fam.mean_speedup_vs_ptas(c) for c in cores]
        # Monotone scaling (allow a 5% plateau wobble at the top end).
        for lo, hi in zip(speedups, speedups[1:]):
            assert hi >= lo * 0.95, (
                f"{fam.label}: speedup dropped from {lo:.2f} to {hi:.2f}"
            )
        # Substantial speedup at 16 cores (paper: 6.5-11.7x across
        # families; we require > 3x as the robust qualitative floor).
        assert speedups[-1] > 3.0, f"{fam.label}: {speedups[-1]:.2f}x at 16"
        # Near-linear at 2 cores for these wide tables.
        assert fam.mean_speedup_vs_ptas(2) > 1.4

        # The parallel algorithm is far faster than the MILP.
        assert fam.mean_speedup_vs_ip(max(cores)) > 1.0

        for record in fam.records:
            for run in record.parallel:
                assert run.makespan == record.sequential.makespan
