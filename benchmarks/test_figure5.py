"""Benchmark: Figure 5 — approximation-ratio bars (best/worst instances).

Asserts the bar ordering the paper reports: IP (1.0) <= parallel PTAS <=
LPT <= LS on the aggregate, with the PTAS far below its ``1 + eps``
guarantee.
"""

from __future__ import annotations

from conftest import save_panel

from repro.experiments.figures import run_figure5
from repro.experiments.metrics import mean


def test_figure5(benchmark, scale, results_dir):
    fig = benchmark.pedantic(
        run_figure5, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    save_panel(results_dir, "figure5", fig.render())

    records = fig.best.records + fig.worst.records
    assert records

    # Panel (a) — the best cases: the parallel PTAS beats LPT by a clear
    # margin (the paper's 0.28 headline gap comes from here).
    best_par = mean(r.ratio_parallel for r in fig.best.records)
    best_lpt = mean(r.ratio_lpt for r in fig.best.records)
    assert best_par < best_lpt
    assert fig.best.records[0].lpt_gap > 0.05

    # Panel (b) — the worst cases: LPT may lead, but never by more than
    # the eps=0.3 guarantee allows (paper sample: 0.13).
    for r in fig.worst.records:
        if r.ip_optimal:
            assert r.lpt_gap >= -0.30 - 1e-9, r

    # Across both panels: LS is the weakest algorithm on average, ratios
    # sit above the (proven) optimum, and the PTAS stays far below 1+eps.
    mean_par = mean(r.ratio_parallel for r in records)
    mean_lpt = mean(r.ratio_lpt for r in records)
    mean_ls = mean(r.ratio_ls for r in records)
    assert mean_lpt <= mean_ls + 0.02
    for r in records:
        if r.ip_optimal:
            assert r.ratio_parallel >= 1.0 - 1e-9
    assert mean_par < 1.3
