"""Online scheduler benchmark: incremental repair vs recompute-from-scratch.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_online.py                   # full
    PYTHONPATH=src python benchmarks/bench_online.py --check-baseline  # CI gate

Drives seeded traffic scenarios (:mod:`repro.online.replay` — Poisson
and bursty arrivals over the workload families, random departures)
through a live schedule in both modes:

* ``incremental`` — O(log m) least-loaded repair per event, full
  warm-started PTAS re-solve only when the tracked ratio drifts past
  the Della Croce–Scatamacchia LPT bound;
* ``scratch`` — a full PTAS re-solve forced after *every* event (what
  a service without live schedules would pay for the same freshness).

Both modes settle to a certified ``1 + eps`` schedule at the end, every
sampled intermediate schedule is re-verified with
:func:`repro.model.verify.verify_schedule`, and every re-solve point
must land at or under the engine's guarantee — so the comparison is at
*equal final quality* and the only free variable is how many full PTAS
solves each mode burned.

Gate (always armed — solve counts are deterministic, no wall clock
involved): in every scenario the incremental mode must run at least
``MIN_SOLVE_SAVINGS``x fewer full PTAS solves than scratch.  Results
land under the ``"online"`` section of ``BENCH_dp.json``, one run per
``(scenario, mode)``, fingerprint-stamped via :mod:`repro.io.benchjson`.

``--check-baseline`` is the CI tripwire and re-measures nothing: the
recorded section must exist, match the current scenario fingerprint,
contain both modes of every scenario fully verified and within
guarantee, and meet the solve-savings floor.
"""

from __future__ import annotations

import sys
import time
from dataclasses import asdict
from pathlib import Path

from repro.io.benchjson import (
    instance_fingerprint,
    load_bench,
    merge_runs,
    update_section,
)
from repro.online.replay import ReplayConfig, generate_events, run_replay

#: The replayed scenarios: (name, config).  Small enough to finish in
#: seconds on one core, shaped differently enough (smooth Poisson,
#: bursty, LPT-adversarial times) that the drift policy is exercised
#: from several directions.
SCENARIOS = (
    ("poisson_u100", ReplayConfig(
        family="u_100", machines=4, eps=0.2, num_events=50,
        arrival="poisson", rate=2.0, depart_prob=0.25, seed=0,
    )),
    ("burst_u10", ReplayConfig(
        family="u_10", machines=3, eps=0.2, num_events=50,
        arrival="burst", burst_size=6, burst_every=8, depart_prob=0.2, seed=1,
    )),
    ("poisson_adversarial", ReplayConfig(
        family="lpt_adversarial", machines=3, eps=0.25, num_events=40,
        arrival="poisson", rate=1.5, depart_prob=0.3, seed=2,
    )),
)
#: Floor on scratch/incremental full-PTAS-solve ratio, per scenario.
MIN_SOLVE_SAVINGS = 5.0
VERIFY_EVERY = 5
SECTION = "online"
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_dp.json"
RUN_KEY = ("scenario", "mode")


def workload_descriptor() -> dict:
    """What the fingerprint covers: everything that shapes the replays."""
    return {
        "scenarios": {name: asdict(config) for name, config in SCENARIOS},
        "verify_every": VERIFY_EVERY,
        "min_solve_savings": MIN_SOLVE_SAVINGS,
    }


def run_scenario(name: str, config: ReplayConfig) -> list[dict]:
    """Both modes over one scenario's event trace (shared, seeded)."""
    events = generate_events(config)
    runs = []
    for mode in ("incremental", "scratch"):
        t0 = time.perf_counter()
        report = run_replay(
            events,
            machines=config.machines,
            eps=config.eps,
            mode=mode,
            verify_every=VERIFY_EVERY,
            tenant=f"bench-{name}",
        )
        wall = time.perf_counter() - t0
        runs.append(
            {
                "scenario": name,
                "mode": mode,
                "num_events": report.num_events,
                "full_solves": report.full_solves,
                "resolves": report.resolves,
                "repairs": report.repairs,
                "final_makespan": report.final_makespan,
                "final_ratio": report.final_ratio,
                "final_jobs": report.final_jobs,
                "snapshots_verified": report.snapshots_verified,
                "ratio_within_guarantee": report.ratio_within_guarantee,
                "guarantee": round(1.0 + config.eps, 6),
                "seconds": round(wall, 4),
            }
        )
    return runs


def main() -> int:
    fingerprint = instance_fingerprint(workload_descriptor())
    print(
        f"replaying {len(SCENARIOS)} scenarios x 2 modes "
        f"(fingerprint {fingerprint})"
    )
    runs: list[dict] = []
    failures: list[str] = []
    savings: dict[str, float] = {}
    for name, config in SCENARIOS:
        pair = run_scenario(name, config)
        runs.extend(pair)
        inc, scr = pair
        ratio = scr["full_solves"] / max(1, inc["full_solves"])
        savings[name] = round(ratio, 2)
        print(
            f"{name:22s} incremental={inc['full_solves']:3d} solves "
            f"scratch={scr['full_solves']:3d} solves  savings={ratio:5.1f}x  "
            f"final ratio {inc['final_ratio']:.4f} vs {scr['final_ratio']:.4f} "
            f"(guarantee {inc['guarantee']})"
        )
        if ratio < MIN_SOLVE_SAVINGS:
            failures.append(
                f"{name}: only {ratio:.1f}x fewer full solves "
                f"(required >= {MIN_SOLVE_SAVINGS}x)"
            )
        for run in pair:
            if not run["ratio_within_guarantee"]:
                failures.append(
                    f"{name}/{run['mode']}: a re-solve point exceeded the "
                    "engine guarantee"
                )
            if run["final_ratio"] > run["guarantee"] + 1e-6:
                failures.append(
                    f"{name}/{run['mode']}: final ratio {run['final_ratio']} "
                    f"above the {run['guarantee']} guarantee"
                )

    previous = load_bench(OUTPUT).get(SECTION, {})
    payload = {
        "benchmark": (
            "online streaming scheduler: full PTAS solves, incremental "
            "drift policy vs recompute-from-scratch, at equal final quality"
        ),
        "fingerprint": fingerprint,
        "workload": workload_descriptor(),
        "runs": merge_runs(
            previous.get("runs"), runs, fingerprint, key_fields=RUN_KEY
        ),
        "solve_savings": savings,
        "gate": {
            "min_solve_savings": MIN_SOLVE_SAVINGS,
            "gate_active": True,
            "skip_reason": None,
        },
    }
    update_section(OUTPUT, SECTION, payload)
    print(f"wrote {SECTION!r} section of {OUTPUT}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK: every scenario verified at equal quality, gate met")
    return 0


def check_baseline() -> int:
    """CI tripwire over the recorded section — no re-measurement."""
    section = load_bench(OUTPUT).get(SECTION)
    failures: list[str] = []
    if not section:
        print(f"FAIL: no {SECTION!r} section in {OUTPUT}")
        return 1
    fingerprint = instance_fingerprint(workload_descriptor())
    if section.get("fingerprint") != fingerprint:
        failures.append(
            f"fingerprint {section.get('fingerprint')} != current "
            f"{fingerprint} — scenarios changed, re-run the benchmark"
        )
    runs = {
        (r.get("scenario"), r.get("mode")): r
        for r in section.get("runs", [])
        if r.get("fingerprint") == fingerprint
    }
    for name, _config in SCENARIOS:
        for mode in ("incremental", "scratch"):
            run = runs.get((name, mode))
            if run is None:
                failures.append(
                    f"no current-fingerprint ({name}, {mode}) run recorded"
                )
                continue
            if not run.get("ratio_within_guarantee"):
                failures.append(f"({name}, {mode}): re-solve exceeded guarantee")
            if not run.get("snapshots_verified"):
                failures.append(f"({name}, {mode}): no snapshots verified")
            if run.get("final_ratio", 99.0) > run.get("guarantee", 0.0) + 1e-6:
                failures.append(
                    f"({name}, {mode}): final ratio above guarantee"
                )
        savings = section.get("solve_savings", {}).get(name)
        if savings is None:
            failures.append(f"{name}: no solve_savings recorded")
        elif savings < section.get("gate", {}).get(
            "min_solve_savings", MIN_SOLVE_SAVINGS
        ):
            failures.append(
                f"{name}: recorded savings {savings}x below the "
                f"{MIN_SOLVE_SAVINGS}x floor"
            )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"OK: {SECTION} baseline is structurally sound")
    return 0


if __name__ == "__main__":
    if "--check-baseline" in sys.argv[1:]:
        sys.exit(check_baseline())
    sys.exit(main())
