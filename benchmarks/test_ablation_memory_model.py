"""Ablation benchmark: shared memory vs message passing.

The paper stresses its algorithm is "specifically designed for execution
on shared-memory parallel machines."  This ablation quantifies that
design choice on the simulated machine: wavefront DP states read many
scattered earlier table entries, so charging even modest per-state
communication (a message-passing realization where dependency values are
shipped) erodes the speedup that the shared-memory model (zero
communication) delivers.
"""

from __future__ import annotations

import pytest

from repro.core.bounds import makespan_bounds
from repro.core.dp import DPProblem
from repro.core.parallel_dp import parallel_dp
from repro.core.rounding import round_instance
from repro.simcore.costmodel import CostModel
from repro.simcore.machine import SimulatedMachine
from repro.workloads.generator import make_instance


def _problem() -> DPProblem:
    inst = make_instance("u_10n", 10, 30, seed=3)
    target = makespan_bounds(inst).midpoint()
    r = round_instance(inst, target, 4)
    return DPProblem(r.class_sizes, r.class_counts, target)


def _speedup(comm_ops: float, workers: int = 16) -> float:
    model = CostModel(comm_ops_per_state=comm_ops)
    machine = SimulatedMachine(workers, model, record_traces=False)
    parallel_dp(
        _problem(), workers, "simulated",
        machine=machine, cost_model=model, track_schedule=False,
    )
    return machine.speedup


@pytest.mark.parametrize("comm", [0.0, 100.0, 1000.0, 10000.0])
def test_memory_model_speedup(benchmark, comm):
    benchmark.group = "memory-model"
    speedup = benchmark.pedantic(_speedup, args=(comm,), rounds=1, iterations=1)
    assert speedup > 0


def test_communication_erodes_speedup(benchmark):
    def sweep() -> list[float]:
        return [_speedup(c) for c in (0.0, 100.0, 1000.0, 10000.0)]

    speedups = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Strictly decreasing with communication cost; heavy messaging
    # destroys most of the shared-memory speedup.
    assert speedups == sorted(speedups, reverse=True), speedups
    assert speedups[0] > 2 * speedups[-1], speedups
