"""Benchmark: phase breakdown of the PTAS — the §III parallelization
rationale, measured.

The paper parallelizes only the DP, asserting the remaining phases are
negligible.  This bench profiles the sequential PTAS across the four
speedup families and records the DP's share of total runtime; the
assertion encodes the claim (DP > 50% wherever the table is
non-trivial), and the saved panel documents the full breakdown.
"""

from __future__ import annotations

from conftest import save_panel

from repro.experiments.profiling import PHASES, profile_ptas
from repro.experiments.reporting import ascii_table
from repro.workloads.generator import make_instance

CASES = {
    "u_100 m=10 n=30": make_instance("u_100", 10, 30, seed=0),
    "u_10n m=10 n=30": make_instance("u_10n", 10, 30, seed=0),
    "lpt_adv m=10": make_instance("lpt_adversarial", 10, 21, seed=0),
}


def test_phase_breakdown(benchmark, results_dir):
    def run_all():
        return {name: profile_ptas(inst, 0.3) for name, inst in CASES.items()}

    profiles = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, prof in profiles.items():
        rows.append(
            [name, prof.dp_iterations]
            + [prof.share(p) for p in PHASES]
        )
    panel = ascii_table(
        ["instance", "DP runs"] + list(PHASES),
        rows,
        title="PTAS phase shares (fraction of total runtime)",
    )
    save_panel(results_dir, "phase_profile", panel)

    for name, prof in profiles.items():
        assert prof.share("dp") > 0.5, (name, dict(prof.seconds))
        # No auxiliary phase individually rivals the DP.
        for phase in ("bounds", "rounding", "reconstruction"):
            assert prof.share(phase) < prof.share("dp"), (name, phase)
