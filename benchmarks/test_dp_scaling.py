"""Benchmark: DP cost scaling with table size (the §IV complexity claim).

The paper's analysis says filling the table costs ``O(sigma * |C|)``
(each of the ``sigma`` entries scans the configuration set).  This bench
measures the faithful table engine over a family of growing synthetic
problems and checks the measured operation counts track ``sigma * |C|``
exactly, while wall time stays roughly proportional — the empirical
version of the complexity statement.
"""

from __future__ import annotations

import pytest

from repro.core.dp import DPProblem, solve_table

#: Two-class problems with growing counts: sigma = (a+1)(b+1).
CASES = {
    "sigma~100": DPProblem((5, 8), (9, 9), 24),
    "sigma~400": DPProblem((5, 8), (19, 19), 24),
    "sigma~1600": DPProblem((5, 8), (39, 39), 24),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_table_engine_scaling(benchmark, name):
    problem = CASES[name]
    benchmark.group = "dp-table-scaling"
    result = benchmark(solve_table, problem, track_schedule=False)
    assert result.opt is not None


def test_ops_match_sigma_times_configs(benchmark):
    def measure() -> list[tuple[int, int]]:
        out = []
        for problem in CASES.values():
            res = solve_table(problem, track_schedule=False, collect_stats=True)
            assert res.stats is not None
            expected = (problem.table_size - 1) * res.stats.num_configs
            out.append((res.stats.config_scans, expected))
        return out

    pairs = benchmark.pedantic(measure, rounds=1, iterations=1)
    for measured, expected in pairs:
        assert measured == expected
