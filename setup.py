"""Setuptools shim.

All metadata lives in ``pyproject.toml``; this file exists so the package
can be installed in environments whose setuptools predates PEP 660
editable wheels (``python setup.py develop`` / offline boxes without the
``wheel`` package).
"""

from setuptools import setup

setup()
